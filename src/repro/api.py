"""The supported public entry point: a context-managed Nymix session.

Every consumer of the reproduction used to repeat the same ~10 lines of
wiring — build a :class:`NymixConfig`, construct a :class:`NymManager`
(which wires the :class:`Timeline`, the simulated :class:`Internet` and
the :class:`Hypervisor`), register the standard cloud providers, and
remember to discard every nymbox at the end.  :class:`NymixSession`
owns that lifecycle:

    from repro.api import NymixSession

    with NymixSession(seed=7) as nx:
        nym = nx.create_nym(name="alice")
        nx.timed_browse(nym, "bbc.co.uk")
        nx.store_nym(nym, password="pw")
    # exit tears down every live nymbox; nothing remains on the host

The session is a thin facade: ``nx.manager`` (and ``nx.timeline``,
``nx.hypervisor``, ``nx.internet``, ``nx.obs``) expose the full stack
for anything not delegated here.  Two same-seed sessions running the
same workload produce byte-identical event journals, exactly like the
underlying manager.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.core.config import NymixConfig
from repro.core.manager import NymManager
from repro.core.nymbox import NymBox
from repro.core.requests import NymRequest, StoreNymRequest
from repro.errors import NymStateError

__all__ = ["NymixSession", "NymRequest", "StoreNymRequest", "TenantControl"]


class TenantControl:
    """The session's tenancy control plane (``session.tenants``).

    Thin facade over a :class:`~repro.tenancy.registry.TenantRegistry`
    attached to the session timeline.  Policy mutations (``register``,
    ``update``, ``delete``) are *staged* and reconciled at the next
    deterministic sim-time boundary; ``wait_reconciled()`` sleeps the
    timeline up to that boundary so subsequent traffic sees the new
    policy set.
    """

    def __init__(self, registry) -> None:
        self._registry = registry

    @property
    def registry(self):
        return self._registry

    def register(self, policy) -> None:
        """Stage a new tenant policy for the next reconciliation boundary."""
        self._registry.commit(policy)

    #: ``update`` is ``register`` with last-wins semantics at the boundary.
    update = register

    def delete(self, name: str) -> None:
        self._registry.delete(name)

    def wait_reconciled(self) -> None:
        self._registry.wait_reconciled()

    def policy_for(self, name: str):
        return self._registry.policy_for(name)

    def report(self) -> List[dict]:
        return self._registry.report()

    def __contains__(self, name: str) -> bool:
        return name in self._registry.policies

    def __repr__(self) -> str:
        return f"TenantControl({sorted(self._registry.policies)})"


class NymixSession:
    """Context manager owning one fully wired Nymix deployment.

    ``config`` carries every tunable; ``seed`` is a convenience override
    for the common case (``NymixSession(seed=7)``).  With
    ``cloud_providers=True`` (the default) the two standard providers —
    Dropbox and Google Drive lookalikes — are registered so §3.5 cloud
    storage works out of the box.
    """

    def __init__(
        self,
        config: Optional[NymixConfig] = None,
        *,
        seed: Optional[int] = None,
        cloud_providers: bool = True,
    ) -> None:
        if config is None:
            config = NymixConfig(seed=seed if seed is not None else 0)
        elif seed is not None:
            config = replace(config, seed=seed)
        self.config = config
        self._cloud_providers = cloud_providers
        self._manager: Optional[NymManager] = None
        self.closed = False

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> "NymixSession":
        """Wire the stack (idempotent; ``__enter__`` calls this)."""
        if self.closed:
            raise NymStateError("this NymixSession has been closed")
        if self._manager is None:
            self._manager = NymManager(self.config)
            if self._cloud_providers:
                from repro.cloud import make_dropbox, make_google_drive

                self._manager.add_cloud_provider(make_dropbox())
                self._manager.add_cloud_provider(make_google_drive())
            self._manager.obs.event(
                "session.opened", seed=self.config.seed,
                providers=sorted(self._manager.providers),
            )
        return self

    def close(self) -> None:
        """Tear down every live nymbox (amnesia), then seal the session.

        Closing also resets the process-global memo caches (ntor
        keyshares, mixnet keys/keystreams, the shared base image): a
        session's key material must not stay resident in a long-lived
        worker after the session is gone.  The reset is invisible in the
        journal — caches never feed the seeded RNG stream — it only costs
        the next session its warm start.
        """
        from repro.runtime import reset_process_caches

        if self.closed or self._manager is None:
            self.closed = True
            reset_process_caches()
            return
        manager = self._manager
        for name in sorted(manager.nymboxes):
            manager.discard_nym(manager.nymboxes[name])
        manager.obs.event("session.closed", nyms_stored=len(manager.stored_nyms))
        self.closed = True
        reset_process_caches()

    def __enter__(self) -> "NymixSession":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the wired stack ----------------------------------------------------

    @property
    def manager(self) -> NymManager:
        if self._manager is None:
            if self.closed:
                raise NymStateError("this NymixSession has been closed")
            self.open()
        return self._manager

    @property
    def timeline(self):
        return self.manager.timeline

    @property
    def obs(self):
        return self.manager.obs

    @property
    def hypervisor(self):
        return self.manager.hypervisor

    @property
    def internet(self):
        return self.manager.internet

    @property
    def tenants(self) -> TenantControl:
        """The tenancy control plane, attached on first use.

        Until first access, ``timeline.tenancy`` stays the no-op null
        registry and the session behaves exactly as before (journal
        byte-identical).  First access attaches a live
        :class:`~repro.tenancy.registry.TenantRegistry`.
        """
        timeline = self.manager.timeline
        if not timeline.tenancy.active:
            from repro.tenancy.registry import TenantRegistry

            TenantRegistry(timeline).attach()
        return TenantControl(timeline.tenancy)

    # -- delegated operations ------------------------------------------------

    def create_nym(self, *args, **kwargs) -> NymBox:
        return self.manager.create_nym(*args, **kwargs)

    def load_nym(self, name: str, password: str, **kwargs) -> NymBox:
        return self.manager.load_nym(name, password, **kwargs)

    def store_nym(self, nymbox: NymBox, *args, **kwargs):
        return self.manager.store_nym(nymbox, *args, **kwargs)

    def snapshot_nym(self, nymbox: NymBox, password: str, **kwargs):
        return self.manager.snapshot_nym(nymbox, password, **kwargs)

    def discard_nym(self, nymbox: NymBox) -> None:
        self.manager.discard_nym(nymbox)

    def recover_nym(self, name: str, password: str, **kwargs) -> NymBox:
        return self.manager.recover_nym(name, password, **kwargs)

    def close_session(self, nymbox: NymBox, password: Optional[str] = None):
        return self.manager.close_session(nymbox, password)

    def timed_browse(self, nymbox: NymBox, hostname: str):
        return self.manager.timed_browse(nymbox, hostname)

    def add_cloud_provider(self, provider):
        return self.manager.add_cloud_provider(provider)

    def create_cloud_account(self, provider_host: str, username: str, password: str):
        return self.manager.create_cloud_account(provider_host, username, password)

    def live_nyms(self) -> List[str]:
        return self.manager.live_nyms()

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("open" if self._manager else "unopened")
        return f"NymixSession(seed={self.config.seed}, {state})"
