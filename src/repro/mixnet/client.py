"""The ``"mixnet"`` anonymizer: a client of the stratified mix deployment.

Forward packets cross one node per layer with an exponential (Poisson
process) delay per hop; replies come back through a pre-built single-use
reply block.  Independently of user traffic, the client emits loop and
drop cover packets on a Poisson clock, so an observer at the entry layer
sees transmissions whether or not the user is active — the property the
traffic-confirmation attack in :mod:`repro.attacks` measures.

Cover ticks run as timeline events: they do their crypto synchronously
and schedule a delivery event at the packet's modelled arrival time
(never sleeping inside the callback — event handlers must not advance
the clock).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.anonymizers.base import (
    Anonymizer,
    AnonymizerState,
    TransferPlan,
    register_anonymizer,
)
from repro.errors import MixnetError
from repro.faults.retry import RetryPolicy, retry_call
from repro.mixnet.packet import (
    PAYLOAD_BYTES,
    build_packet,
    build_reply_block,
    encode_body,
    open_body,
    open_reply,
    packet_bytes,
)
from repro.mixnet.topology import MixNode, MixTopology
from repro.net.addresses import Ipv4Address
from repro.net.internet import Internet
from repro.net.nat import MasqueradeNat
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng

#: one-way latency of each inter-mix (and client/exit edge) link
LINK_LATENCY_S = 0.020
#: directory refresh + SURB management traffic beyond packetization
CONTROL_OVERHEAD = 0.04
#: client send pacing: packets per second a single flow may emit
SEND_RATE_PPS = 64.0

_PROCESS_LAUNCH_S = 0.6
_DIRECTORY_SETTLE_S = 0.8
_LOOP_PAYLOAD = b"mixnet-loop-cover"


class MixnetClient(Anonymizer):
    """One nym's mixnet client (fresh per CommVM, like the Tor client)."""

    kind = "mixnet"

    def __init__(
        self,
        timeline: Timeline,
        internet: Internet,
        nat: MasqueradeNat,
        rng: SeededRng,
        topology: MixTopology,
        cover_rate_pps: float = 1.0,
        mean_hop_delay_s: float = 0.05,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(timeline, internet, nat, rng)
        if cover_rate_pps < 0:
            raise MixnetError(f"cover rate must be >= 0, got {cover_rate_pps}")
        if mean_hop_delay_s < 0:
            raise MixnetError(f"hop delay must be >= 0, got {mean_hop_delay_s}")
        self.topology = topology
        self.cover_rate_pps = cover_rate_pps
        self.mean_hop_delay_s = mean_hop_delay_s
        self.retry_policy = retry_policy or RetryPolicy()
        self._path: Optional[List[MixNode]] = None
        self._cover_event = None
        self._cover_inflight = 0
        self._topology_cached = False
        self.cover_packets_sent = 0
        self.cover_bytes_sent = 0
        self.reroutes = 0

    # -- bootstrap -------------------------------------------------------

    def start(self) -> float:
        obs = self.timeline.obs
        begin = self.timeline.now
        with obs.span("mixnet.start"):
            self.timeline.sleep(self.rng.jitter(_PROCESS_LAUNCH_S, 0.1))
            if not self._topology_cached:
                doc_bytes = self.topology.document_bytes()
                duration = self.internet.uplink.transfer(doc_bytes).duration_s
                if self.nat.host_capture is not None:
                    self.nat.host_capture.record_flow(
                        where=f"uplink({self.nat.name})",
                        sender=self.nat.name,
                        label="anonymizer",
                        payload_bytes=doc_bytes,
                        summary="mixnet directory fetch",
                    )
                self.timeline.sleep(
                    duration + self.rng.jitter(_DIRECTORY_SETTLE_S, 0.15)
                )
            self._path = self.topology.sample_path(self.rng)
            # Prime the route with one loop cover packet: real crypto end
            # to end, proving the path before user traffic rides it.
            echo = self._round_trip(_LOOP_PAYLOAD)
            if echo != _LOOP_PAYLOAD:
                raise MixnetError("mixnet loop cover failed to round-trip")
        self.started = True
        self.startup_seconds = self.timeline.now - begin
        obs.metrics.histogram("mixnet.start_s").observe(self.startup_seconds)
        obs.event(
            "mixnet.started",
            warm=self._topology_cached,
            layers=self.topology.num_layers,
            cover_rate_pps=round(self.cover_rate_pps, 6),
            seconds=round(self.startup_seconds, 6),
        )
        self._schedule_cover()
        return self.startup_seconds

    def stop(self) -> None:
        if self._cover_event is not None:
            self._cover_event.cancel()
            self._cover_event = None
        self._path = None
        super().stop()

    # -- path maintenance (churn -> reroute) ------------------------------

    def _live_path(self) -> List[MixNode]:
        if self._path is not None:
            dead = [node.name for node in self._path if not node.alive]
            if dead:
                self._path = None
                self.reroutes += 1
                self.timeline.obs.metrics.counter("mixnet.reroutes").inc()
                self.timeline.obs.event("mixnet.rerouted", dead=",".join(dead))
        if self._path is None:
            self._path = self.topology.sample_path(self.rng)
        return self._path

    # -- timing model -----------------------------------------------------

    def _hop_delay(self) -> float:
        """Exponential per-hop mixing delay (a Poisson mix in expectation)."""
        return LINK_LATENCY_S - math.log(1.0 - self.rng.random()) * self.mean_hop_delay_s

    # -- the real data path (layered crypto through live nodes) -----------

    def _relay_forward(
        self, path: List[MixNode], packet: bytes, advance: bool
    ) -> Tuple[bytes, float]:
        """Walk ``packet`` through ``path``; returns (peeled body, total delay)."""
        obs = self.timeline.obs
        total = 0.0
        for index, node in enumerate(path):
            next_hop, packet = node.process(packet)
            expected = path[index + 1].name if index + 1 < len(path) else None
            if next_hop != expected:
                raise MixnetError(
                    f"routing mismatch at {node.name}: {next_hop!r} != {expected!r}"
                )
            delay = self._hop_delay()
            obs.metrics.histogram(f"mixnet.layer{index}.delay_s").observe(delay)
            total += delay
            if advance:
                queue = obs.metrics.gauge(f"mixnet.layer{index}.queue")
                queue.set(1)
                self.timeline.sleep(delay)
                queue.set(0)
        total += LINK_LATENCY_S  # exit -> destination edge
        if advance:
            self.timeline.sleep(LINK_LATENCY_S)
        return packet, total

    def _relay_reply(
        self,
        reply_path: List[MixNode],
        header: bytes,
        body: bytes,
        advance: bool,
    ) -> Tuple[bytes, float]:
        obs = self.timeline.obs
        total = 0.0
        for index, node in enumerate(reply_path):
            next_hop, header, body = node.process_reply(header, body)
            expected = (
                reply_path[index + 1].name if index + 1 < len(reply_path) else None
            )
            if next_hop != expected:
                raise MixnetError(
                    f"reply routing mismatch at {node.name}: "
                    f"{next_hop!r} != {expected!r}"
                )
            delay = self._hop_delay()
            obs.metrics.histogram(f"mixnet.layer{index}.delay_s").observe(delay)
            total += delay
            if advance:
                self.timeline.sleep(delay)
        total += LINK_LATENCY_S  # last reply mix -> client edge
        if advance:
            self.timeline.sleep(LINK_LATENCY_S)
        return body, total

    def _round_trip(self, plaintext: bytes, advance: bool = True) -> bytes:
        """Forward onion out, exit echoes through a fresh reply block."""
        obs = self.timeline.obs
        path = self._live_path()
        reply_path = self.topology.sample_path(self.rng)
        block = build_reply_block(self.rng, reply_path)
        packet = build_packet(self.rng, path, plaintext)
        obs.metrics.counter("mixnet.packets.sent").inc()
        body, _ = self._relay_forward(path, packet, advance)
        payload = open_body(body)
        echo = encode_body(payload, self.rng.token_bytes(8))
        body, _ = self._relay_reply(reply_path, block.header, echo, advance)
        response = open_reply(block, body)
        obs.metrics.counter("mixnet.packets.delivered").inc()
        return response

    def send_payload(self, plaintext: bytes) -> bytes:
        """Round-trip a payload through real layered crypto (for validation).

        Mix-node churn mid-flight raises :class:`MixnetError`; the retry
        re-samples the path from the survivors of each layer.
        """
        self._require_started()
        if len(plaintext) > PAYLOAD_BYTES:
            raise MixnetError(
                f"payload exceeds packet capacity "
                f"({len(plaintext)} > {PAYLOAD_BYTES})"
            )
        return retry_call(
            self.timeline,
            lambda: self._round_trip(plaintext),
            policy=self.retry_policy,
            retryable=MixnetError,
            site="mixnet.send",
            reraise=True,
        )

    # -- cover traffic (loop + drop, Poisson clock) ------------------------

    def _schedule_cover(self) -> None:
        if self.cover_rate_pps <= 0:
            return
        gap = -math.log(1.0 - self.rng.random()) / self.cover_rate_pps
        self._cover_event = self.timeline.after(gap, self._cover_tick)

    def _cover_tick(self) -> None:
        self._cover_event = None
        if not self.started:
            return
        obs = self.timeline.obs
        is_loop = self.rng.random() < 0.5
        try:
            path = self.topology.sample_path(self.rng)
            if is_loop:
                # A loop returns to the client through a reply block; the
                # crypto runs now, delivery lands at the modelled arrival.
                reply_path = self.topology.sample_path(self.rng)
                block = build_reply_block(self.rng, reply_path)
                packet = build_packet(self.rng, path, _LOOP_PAYLOAD)
                body, fwd = self._relay_forward(path, packet, advance=False)
                echo = encode_body(open_body(body), self.rng.token_bytes(8))
                body, back = self._relay_reply(
                    reply_path, block.header, echo, advance=False
                )
                if open_reply(block, body) != _LOOP_PAYLOAD:
                    raise MixnetError("loop cover packet came back corrupted")
                total = fwd + back
                obs.metrics.counter("mixnet.cover.loop").inc()
            else:
                # A drop packet dies at the exit, unobservably.
                packet = build_packet(self.rng, path, b"")
                _, total = self._relay_forward(path, packet, advance=False)
                obs.metrics.counter("mixnet.cover.drop").inc()
            self.cover_packets_sent += 1
            self.cover_bytes_sent += packet_bytes(len(path))
            self._cover_inflight += 1
            obs.metrics.gauge("mixnet.cover.inflight").set(self._cover_inflight)
            self.timeline.after(total, self._cover_delivered)
        except MixnetError:
            obs.metrics.counter("mixnet.cover.skipped").inc()
        self._schedule_cover()

    def _cover_delivered(self) -> None:
        obs = self.timeline.obs
        self._cover_inflight -= 1
        obs.metrics.gauge("mixnet.cover.inflight").set(self._cover_inflight)
        obs.metrics.counter("mixnet.cover.delivered").inc()

    # -- transport contract ------------------------------------------------

    def plan(self, payload_bytes: int) -> TransferPlan:
        path = self._live_path()
        layers = len(path)
        wire_factor = packet_bytes(layers) / PAYLOAD_BYTES
        return TransferPlan(
            overhead_factor=wire_factor * (1.0 + CONTROL_OVERHEAD),
            path_latency_s=(layers + 1) * LINK_LATENCY_S
            + layers * self.mean_hop_delay_s,
            handshake_rtts=1.0,  # SURB delivery before the first response
            per_flow_ceiling_bps=PAYLOAD_BYTES * 8 * SEND_RATE_PPS,
        )

    def exit_address(self) -> Ipv4Address:
        """Destinations see the deployment's exit gateway, never the client."""
        return self.topology.gateway_ip

    def resolve(self, hostname: str) -> Ipv4Address:
        """DNS resolves at the exit gateway, one round trip away."""
        self._require_started()
        answer = self.internet.resolve(hostname)
        plan = self.plan(0)
        self.timeline.sleep(2 * plan.path_latency_s)
        return answer

    # -- quasi-persistent state (§3.5) -------------------------------------

    def export_state(self) -> AnonymizerState:
        return AnonymizerState(
            kind=self.kind,
            payload={"topology_cached": True},
        )

    def import_state(self, state: AnonymizerState) -> None:
        super().import_state(state)
        self._topology_cached = bool(state.payload.get("topology_cached"))


register_anonymizer("mixnet", MixnetClient)
