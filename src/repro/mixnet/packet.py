"""The fixed-size layered packet format (Outfox-style).

Every packet a client emits is the same size for a given layer count:
an innermost fixed-width body (length prefix + packet id + payload +
zero padding) wrapped in one AEAD layer per hop.  Each layer is

    eph_pub(32) || ChaCha20-Poly1305(key, routing(16) || inner)

where ``key`` comes from an X25519 exchange between a client ephemeral
keypair and the mix node's long-term key, expanded through HKDF.  A mix
peels exactly one layer: it learns the next hop (or that it is the exit)
and nothing else.  The Poly1305 tag doubles as the replay-detection
handle — a node that sees the same tag twice rejects the packet.

Reply blocks (single-use, Sphinx-SURB-style) carry the return path: the
client pre-builds an onion *header* whose per-hop plaintext holds the
next hop plus a payload key; each node peels its header layer and
stream-encrypts the attached body with that key.  The client, holding
all payload keys, removes every stratum at once.  A reply block spends
itself on first use.

Three process-global caches keep the hot path fast without touching the
seeded RNG stream (mirroring the ntor client cache / relay memo pair):

* :data:`SENDER_KEY_CACHE` — client side, keyed by node public key.  A
  hit still burns the 32-byte ephemeral draw, so journals are identical
  whether the cache is warm, cold, or disabled.
* the per-node peel memo, keyed by client ephemeral — gated by
  :func:`set_peel_memo_enabled` so perfbench baselines can turn it off.
* :data:`MIX_STREAM_CACHE` — the ChaCha20 keystream and Poly1305
  one-time key per layer key.  Layer keys are stable (see above) and the
  nonce is fixed, so every packet under a key XORs against the *same*
  keystream; caching it turns each wrap/peel into one XOR plus one MAC.
  Cold entries for a whole path fill in a single vectorized dispatch
  (:func:`repro.crypto.chacha20.chacha20_keystreams`).  Gated by
  :func:`set_stream_cache_enabled`; outputs are byte-identical either
  way (pinned by tests/test_mixnet_stream_cache.py).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.aead import ChaCha20Poly1305, _pad16_tail
from repro.crypto.chacha20 import (
    chacha20_keystream,
    chacha20_keystreams,
    chacha20_xor,
    chacha20_xor_layers,
    xor_bytes,
)
from repro.crypto.kdf import hkdf
from repro.crypto.poly1305 import Poly1305, constant_time_equal
from repro.crypto.x25519 import x25519, x25519_keypair
from repro.errors import AuthenticationError, MixnetError
from repro.runtime import evict_oldest, register_process_cache
from repro.sim.rng import SeededRng

#: AEAD nonce — every layer key is single-purpose, so a fixed nonce is sound.
_NONCE = b"\x00" * 12
_KEY_INFO = b"nymix-mixnet-outfox-v1"

#: maximum payload carried by one packet
PAYLOAD_BYTES = 1024
#: length prefix + packet id ahead of the payload in the innermost body
_LEN_BYTES = 4
_PID_BYTES = 8
BODY_BYTES = _LEN_BYTES + _PID_BYTES + PAYLOAD_BYTES

#: per-hop routing field: 1 flag byte + up to 15 bytes of node name
ROUTING_BYTES = 16
_EPH_BYTES = 32
_TAG_BYTES = 16
#: what one onion layer adds: ephemeral key + AEAD tag + routing field
LAYER_OVERHEAD_BYTES = _EPH_BYTES + _TAG_BYTES + ROUTING_BYTES
#: extra field in a reply-block header layer: the hop's payload key
_PAYLOAD_KEY_BYTES = 32


def packet_bytes(layers: int) -> int:
    """On-wire size of a forward packet crossing ``layers`` mixes."""
    return BODY_BYTES + layers * LAYER_OVERHEAD_BYTES


# -- sender-side key cache ---------------------------------------------------


class MixKeyCache:
    """Client side of the per-node key exchange, keyed by node public key.

    The derived layer key is a pure function of (client ephemeral, node
    long-term key); node keys come from the deployment seed, so reusing
    one ephemeral against the same node is sound for the simulation.
    The ephemeral draw is still burned on every derivation, keeping the
    seeded stream — and the event journal — byte-identical whether the
    cache is warm, cold, or disabled.
    """

    #: one X25519 key pair per distinct node key — tiny entries, but a
    #: long-lived process sees every deployment's nodes; bound it.
    DEFAULT_MAX_ENTRIES = 65_536

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.enabled = True
        self.max_entries = max_entries
        self.evictions = 0
        self._by_node_key: Dict[bytes, Tuple[bytes, bytes]] = {}

    def __len__(self) -> int:
        return len(self._by_node_key)

    def lookup(self, node_public: bytes) -> Optional[Tuple[bytes, bytes]]:
        if not self.enabled:
            return None
        return self._by_node_key.get(node_public)

    def store(self, node_public: bytes, eph_public: bytes, key: bytes) -> None:
        if self.enabled:
            self._by_node_key[node_public] = (eph_public, key)
            self.evictions += evict_oldest(self._by_node_key, self.max_entries)

    def clear(self) -> None:
        self._by_node_key.clear()


#: shared across every client in the process; perfbench baselines disable + clear
SENDER_KEY_CACHE = MixKeyCache()
register_process_cache(
    "mixnet.sender_keys", SENDER_KEY_CACHE.clear, SENDER_KEY_CACHE.__len__
)

class MixStreamCache:
    """Cached ChaCha20 keystream + Poly1305 one-time key per layer key.

    Every AEAD under a given layer key uses the fixed :data:`_NONCE`, so
    its counter-0 block (the MAC's one-time key) and counter-1.. stream
    (the cipher bytes) never change across packets.  One cache entry is
    ``(otk, keystream)`` fetched in a single dispatch; an entry regrows
    when a longer message comes through.
    """

    #: entries hold whole keystreams (KiBs each) — keep the bound tight.
    DEFAULT_MAX_ENTRIES = 8_192

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.enabled = True
        self.max_entries = max_entries
        self.evictions = 0
        self._by_key: Dict[bytes, Tuple[bytes, bytes]] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def entry(self, key: bytes, length: int) -> Optional[Tuple[bytes, bytes]]:
        if not self.enabled:
            return None
        entry = self._by_key.get(key)
        if entry is None or len(entry[1]) < length:
            raw = chacha20_keystream(key, _NONCE, 64 + length, counter=0)
            entry = (raw[:32], raw[64:])
            self._by_key[key] = entry
            self.evictions += evict_oldest(self._by_key, self.max_entries)
        return entry

    def prefill(self, keys: Sequence[bytes], length: int) -> None:
        """Warm every missing/short entry in one vectorized dispatch."""
        if not self.enabled:
            return
        missing = [
            key
            for key in dict.fromkeys(keys)
            if key not in self._by_key or len(self._by_key[key][1]) < length
        ]
        if not missing:
            return
        for key, raw in zip(
            missing, chacha20_keystreams(missing, _NONCE, 64 + length, counter=0)
        ):
            self._by_key[key] = (raw[:32], raw[64:])
        self.evictions += evict_oldest(self._by_key, self.max_entries)

    def clear(self) -> None:
        self._by_key.clear()


#: shared across the process; perfbench baselines disable + clear
MIX_STREAM_CACHE = MixStreamCache()
register_process_cache(
    "mixnet.streams", MIX_STREAM_CACHE.clear, MIX_STREAM_CACHE.__len__
)


def stream_cache_enabled() -> bool:
    return MIX_STREAM_CACHE.enabled


def set_stream_cache_enabled(enabled: bool) -> None:
    MIX_STREAM_CACHE.enabled = enabled
    if not enabled:
        MIX_STREAM_CACHE.clear()


#: node-side memo of derived keys per client ephemeral (set by perfbench)
_PEEL_MEMO_ENABLED = True


def peel_memo_enabled() -> bool:
    return _PEEL_MEMO_ENABLED


def set_peel_memo_enabled(enabled: bool) -> None:
    global _PEEL_MEMO_ENABLED
    _PEEL_MEMO_ENABLED = enabled


def _expand_key(shared: bytes) -> bytes:
    return hkdf(shared, salt=b"", info=_KEY_INFO, length=32)


def derive_sender_key(rng: SeededRng, node_public: bytes) -> Tuple[bytes, bytes]:
    """(ephemeral public, layer key) for one hop, via the sender cache."""
    cached = SENDER_KEY_CACHE.lookup(node_public)
    if cached is not None:
        rng.token_bytes(32)  # burn the ephemeral draw: stream stays identical
        return cached
    private, public = x25519_keypair(rng)
    key = _expand_key(x25519(private, node_public))
    SENDER_KEY_CACHE.store(node_public, public, key)
    return public, key


def derive_node_key(
    node_private: bytes, eph_public: bytes, memo: Optional[Dict[bytes, bytes]]
) -> bytes:
    """The mix node's side of the exchange, through its peel memo."""
    if memo is not None and _PEEL_MEMO_ENABLED:
        key = memo.get(eph_public)
        if key is None:
            key = _expand_key(x25519(node_private, eph_public))
            memo[eph_public] = key
        return key
    return _expand_key(x25519(node_private, eph_public))


# -- routing fields ----------------------------------------------------------


def _encode_routing(next_hop: Optional[str]) -> bytes:
    if next_hop is None:
        return b"\x00" * ROUTING_BYTES
    encoded = next_hop.encode()
    if len(encoded) > ROUTING_BYTES - 1:
        raise MixnetError(f"mix node name too long for routing field: {next_hop!r}")
    return b"\x01" + encoded.ljust(ROUTING_BYTES - 1, b"\x00")


def _decode_routing(routing: bytes) -> Optional[str]:
    if routing[0] == 0:
        return None
    return routing[1:].rstrip(b"\x00").decode()


# -- forward packets ---------------------------------------------------------


def encode_body(payload: bytes, packet_id: bytes) -> bytes:
    """The innermost fixed-width body: length || packet id || payload || pad."""
    if len(payload) > PAYLOAD_BYTES:
        raise MixnetError(
            f"payload exceeds packet capacity ({len(payload)} > {PAYLOAD_BYTES})"
        )
    if len(packet_id) != _PID_BYTES:
        raise MixnetError(f"packet id must be {_PID_BYTES} bytes")
    body = struct.pack(">I", len(payload)) + packet_id + payload
    return body + b"\x00" * (BODY_BYTES - len(body))


def open_body(body: bytes) -> bytes:
    """Recover the payload from a fully peeled body."""
    if len(body) != BODY_BYTES:
        raise MixnetError(f"malformed packet body ({len(body)} bytes)")
    (length,) = struct.unpack(">I", body[:_LEN_BYTES])
    if length > PAYLOAD_BYTES:
        raise MixnetError(f"packet body claims {length} payload bytes")
    start = _LEN_BYTES + _PID_BYTES
    return body[start : start + length]


def _stream_tag(otk: bytes, ciphertext: bytes, aad: bytes) -> bytes:
    """RFC 8439 AEAD tag from a precomputed one-time key (exact framing)."""
    mac = Poly1305(otk)
    mac.update(aad)
    mac.update(_pad16_tail(len(aad)))
    mac.update(ciphertext)
    mac.update(_pad16_tail(len(ciphertext)))
    mac.update(struct.pack("<QQ", len(aad), len(ciphertext)))
    return mac.tag()


def _seal(key: bytes, plaintext: bytes, aad: bytes) -> bytes:
    """``ChaCha20Poly1305(key).encrypt(_NONCE, ...)`` via the stream cache."""
    entry = MIX_STREAM_CACHE.entry(key, len(plaintext))
    if entry is None:
        return ChaCha20Poly1305(key).encrypt(_NONCE, plaintext, aad)
    otk, stream = entry
    ciphertext = xor_bytes(plaintext, stream[: len(plaintext)])
    return ciphertext + _stream_tag(otk, ciphertext, aad)


def _open(key: bytes, sealed: bytes, aad: bytes) -> bytes:
    """``ChaCha20Poly1305(key).decrypt(_NONCE, ...)`` via the stream cache."""
    if len(sealed) < _TAG_BYTES:
        raise AuthenticationError("ciphertext shorter than the AEAD tag")
    entry = MIX_STREAM_CACHE.entry(key, len(sealed) - _TAG_BYTES)
    if entry is None:
        return ChaCha20Poly1305(key).decrypt(_NONCE, sealed, aad)
    otk, stream = entry
    ciphertext, tag = sealed[:-_TAG_BYTES], sealed[-_TAG_BYTES:]
    if not constant_time_equal(tag, _stream_tag(otk, ciphertext, aad)):
        raise AuthenticationError("AEAD tag verification failed")
    return xor_bytes(ciphertext, stream[: len(ciphertext)])


def _wrap_layer(eph_public: bytes, key: bytes, routing: bytes, inner: bytes) -> bytes:
    return eph_public + _seal(key, routing + inner, aad=eph_public)


def peel_layer(
    node_private: bytes,
    packet: bytes,
    memo: Optional[Dict[bytes, bytes]] = None,
) -> Tuple[Optional[str], bytes, bytes]:
    """One mix's work: (next hop or None, inner packet, replay tag)."""
    if len(packet) < _EPH_BYTES + _TAG_BYTES + ROUTING_BYTES:
        raise MixnetError(f"packet too short to peel ({len(packet)} bytes)")
    eph_public = packet[:_EPH_BYTES]
    sealed = packet[_EPH_BYTES:]
    key = derive_node_key(node_private, eph_public, memo)
    try:
        plain = _open(key, sealed, aad=eph_public)
    except AuthenticationError as exc:
        raise MixnetError(f"packet failed authentication: {exc}") from exc
    routing = plain[:ROUTING_BYTES]
    return _decode_routing(routing), plain[ROUTING_BYTES:], sealed[-_TAG_BYTES:]


def build_packet(rng: SeededRng, hops: Sequence, payload: bytes) -> bytes:
    """Wrap ``payload`` for a forward path (one layer per hop, exit innermost).

    ``hops`` are mix-node-like objects exposing ``name`` and
    ``public_key``; the layer addressed to hop *i* routes to hop *i+1*,
    and the last hop sees the terminal marker.  Every call draws a fresh
    packet id, so two packets with identical payloads never share AEAD
    tags (replay detection stays sound under caching).
    """
    if not hops:
        raise MixnetError("a mixnet packet needs at least one hop")
    packet = encode_body(payload, rng.token_bytes(_PID_BYTES))
    # Derive every hop key first (innermost-first: the RNG draw order of
    # the layer-at-a-time loop), then warm the stream cache for the whole
    # path in one vectorized dispatch before wrapping.
    derived = [
        derive_sender_key(rng, hops[index].public_key)
        for index in range(len(hops) - 1, -1, -1)
    ]
    derived.reverse()  # back to hop order
    outermost = ROUTING_BYTES + BODY_BYTES + (len(hops) - 1) * LAYER_OVERHEAD_BYTES
    MIX_STREAM_CACHE.prefill([key for _, key in derived], outermost)
    for index in range(len(hops) - 1, -1, -1):
        next_hop = hops[index + 1].name if index + 1 < len(hops) else None
        eph_public, key = derived[index]
        packet = _wrap_layer(eph_public, key, _encode_routing(next_hop), packet)
    return packet


# -- reply blocks (single-use, §"bidirectional flows") -----------------------


@dataclass
class ReplyBlock:
    """A pre-built return path the exit can use without learning the client.

    ``header`` is the onion the reply travels with: each node peels its
    layer, learns the next hop and its payload key, and stream-encrypts
    the body.  ``payload_keys`` stay with the client.  Single-use: the
    second :func:`open_reply` raises.
    """

    first_hop: str
    header: bytes
    payload_keys: Tuple[bytes, ...] = field(repr=False)
    used: bool = False


def build_reply_block(rng: SeededRng, hops: Sequence) -> ReplyBlock:
    """Pre-compute a return path through ``hops`` (entry first)."""
    if not hops:
        raise MixnetError("a reply block needs at least one hop")
    payload_keys: List[bytes] = []
    derived: List[Tuple[bytes, bytes]] = []
    # First pass keeps the exact RNG draw order (payload key then hop key,
    # innermost-first); the second pass wraps with a prefilled cache.
    for index in range(len(hops) - 1, -1, -1):
        payload_keys.insert(0, rng.token_bytes(_PAYLOAD_KEY_BYTES))
        derived.insert(0, derive_sender_key(rng, hops[index].public_key))
    layer_plain = ROUTING_BYTES + _PAYLOAD_KEY_BYTES
    outermost = layer_plain + (len(hops) - 1) * (layer_plain + _EPH_BYTES + _TAG_BYTES)
    MIX_STREAM_CACHE.prefill([key for _, key in derived], outermost)
    header = b""
    for index in range(len(hops) - 1, -1, -1):
        next_hop = hops[index + 1].name if index + 1 < len(hops) else None
        eph_public, key = derived[index]
        header = _wrap_layer(
            eph_public, key, _encode_routing(next_hop), payload_keys[index] + header
        )
    return ReplyBlock(
        first_hop=hops[0].name, header=header, payload_keys=tuple(payload_keys)
    )


def peel_reply_layer(
    node_private: bytes,
    header: bytes,
    body: bytes,
    memo: Optional[Dict[bytes, bytes]] = None,
) -> Tuple[Optional[str], bytes, bytes, bytes]:
    """One mix's reply work: (next hop, rest of header, re-encrypted body, tag)."""
    next_hop, inner, tag = peel_layer(node_private, header, memo)
    if len(inner) < _PAYLOAD_KEY_BYTES:
        raise MixnetError("reply header layer too short for a payload key")
    payload_key = inner[:_PAYLOAD_KEY_BYTES]
    rest = inner[_PAYLOAD_KEY_BYTES:]
    return next_hop, rest, chacha20_xor(payload_key, _NONCE, body), tag


def open_reply(block: ReplyBlock, body: bytes) -> bytes:
    """Client-side unwrap of a reply body; spends the block."""
    if block.used:
        raise MixnetError("reply block already used (single-use)")
    block.used = True
    # XOR is commutative: all strata come off in one combined-keystream
    # dispatch instead of one pass per hop.
    return open_body(chacha20_xor_layers(block.payload_keys, _NONCE, body))
