"""The stratified mix deployment: L layers of M nodes each.

A forward path visits exactly one node per layer, in layer order.  Node
keypairs derive from per-node RNG forks (stable against consumption
order, like Tor relay keys), so the same seed always yields the same
deployment.  Nodes can be crashed by the fault injector; paths are then
re-sampled from the survivors of the same layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.crypto.x25519 import x25519_keypair
from repro.errors import MixnetError
from repro.mixnet.packet import (
    peel_layer,
    peel_reply_layer,
)
from repro.net.addresses import Ipv4Address
from repro.obs.facade import NULL_OBS
from repro.sim.rng import SeededRng

#: the address destinations observe for mixnet-carried traffic: the
#: deployment's shared exit gateway, never the client
GATEWAY_IP = Ipv4Address.parse("198.51.103.1")

#: directory document sizing: per-node descriptor + signed preamble
_DESCRIPTOR_BYTES = 96
_DOCUMENT_PREAMBLE_BYTES = 512


class MixNode:
    """One mix: a long-term X25519 keypair, a replay window, a liveness bit."""

    def __init__(self, name: str, layer_index: int, rng: SeededRng) -> None:
        self.name = name
        self.layer_index = layer_index
        self.private_key, self.public_key = x25519_keypair(rng)
        self.alive = True
        self.packets_processed = 0
        self.replays_rejected = 0
        self._seen_tags: Set[bytes] = set()
        self._peel_memo: Dict[bytes, bytes] = {}

    def _require_alive(self) -> None:
        if not self.alive:
            raise MixnetError(f"mix node {self.name} is down")

    def _check_replay(self, tag: bytes) -> None:
        if tag in self._seen_tags:
            self.replays_rejected += 1
            raise MixnetError(f"mix node {self.name} rejected a replayed packet")
        self._seen_tags.add(tag)

    def process(self, packet: bytes) -> Tuple[Optional[str], bytes]:
        """Peel one forward layer: (next hop name or None at the exit, inner)."""
        self._require_alive()
        next_hop, inner, tag = peel_layer(self.private_key, packet, self._peel_memo)
        self._check_replay(tag)
        self.packets_processed += 1
        return next_hop, inner

    def process_reply(
        self, header: bytes, body: bytes
    ) -> Tuple[Optional[str], bytes, bytes]:
        """Peel one reply-header layer and re-encrypt the body."""
        self._require_alive()
        next_hop, rest, new_body, tag = peel_reply_layer(
            self.private_key, header, body, self._peel_memo
        )
        self._check_replay(tag)
        self.packets_processed += 1
        return next_hop, rest, new_body

    def crash(self) -> None:
        self.alive = False

    def restore(self) -> None:
        self.alive = True

    def __repr__(self) -> str:
        state = "up" if self.alive else "DOWN"
        return f"MixNode({self.name}, layer={self.layer_index}, {state})"


class MixTopology:
    """The deployment directory: every node, by layer and by name."""

    def __init__(
        self,
        rng: SeededRng,
        layers: int = 3,
        nodes_per_layer: int = 3,
        obs=NULL_OBS,
    ) -> None:
        if layers < 1:
            raise MixnetError(f"a mixnet needs at least one layer, got {layers}")
        if nodes_per_layer < 1:
            raise MixnetError(
                f"a layer needs at least one node, got {nodes_per_layer}"
            )
        self.num_layers = layers
        self.nodes_per_layer = nodes_per_layer
        self.obs = obs
        self.gateway_ip = GATEWAY_IP
        self._grid: List[List[MixNode]] = []
        self._by_name: Dict[str, MixNode] = {}
        for layer_index in range(layers):
            row = []
            for slot in range(nodes_per_layer):
                name = f"mix{layer_index}-{slot:02d}"
                node = MixNode(name, layer_index, rng.fork(f"mix:{name}"))
                row.append(node)
                self._by_name[name] = node
            self._grid.append(row)

    # -- lookup ----------------------------------------------------------

    def node(self, name: str) -> MixNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise MixnetError(f"unknown mix node {name!r}") from None

    def layer(self, index: int) -> List[MixNode]:
        return list(self._grid[index])

    def alive_in_layer(self, index: int) -> List[MixNode]:
        return [node for node in self._grid[index] if node.alive]

    @property
    def total_nodes(self) -> int:
        return len(self._by_name)

    @property
    def alive_nodes(self) -> int:
        return sum(1 for node in self._by_name.values() if node.alive)

    def document_bytes(self) -> int:
        """Size of the signed directory document a client fetches at start."""
        return _DOCUMENT_PREAMBLE_BYTES + self.total_nodes * _DESCRIPTOR_BYTES

    # -- routing ---------------------------------------------------------

    def sample_path(self, rng: SeededRng) -> List[MixNode]:
        """One live node per layer, in layer order."""
        path = []
        for index in range(self.num_layers):
            candidates = self.alive_in_layer(index)
            if not candidates:
                raise MixnetError(f"mixnet layer {index} has no surviving nodes")
            path.append(rng.choice(candidates))
        return path

    # -- churn (the mixnet.node_crash fault) ------------------------------

    def pick_victim(self) -> Optional[str]:
        """The busiest live node in a layer that can lose one.

        Layers with a single survivor are spared so the deployment stays
        routable — the fault models node churn, not a partition.
        """
        best: Optional[MixNode] = None
        for index in range(self.num_layers):
            survivors = self.alive_in_layer(index)
            if len(survivors) < 2:
                continue
            for node in survivors:
                if best is None or (node.packets_processed, node.name) > (
                    best.packets_processed,
                    best.name,
                ):
                    best = node
        return best.name if best is not None else None

    def crash_node(self, name: str = "") -> Optional[str]:
        """Take a node down (named, or a deterministically picked victim)."""
        victim = name or self.pick_victim()
        if victim is None:
            return None
        node = self.node(victim)
        if not node.alive:
            return None
        node.crash()
        self.obs.metrics.counter("mixnet.node.crashes").inc()
        self.obs.event("mixnet.node.crashed", node=node.name, layer=node.layer_index)
        return node.name

    def __repr__(self) -> str:
        return (
            f"MixTopology({self.num_layers}x{self.nodes_per_layer}, "
            f"alive={self.alive_nodes}/{self.total_nodes})"
        )
