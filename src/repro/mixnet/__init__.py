"""A layered (stratified) mixnet anonymizer — the third transport family.

The paper evaluates onion routing (Tor) and DC-nets (Dissent); this
package adds the design point between them: an Outfox/Loopix-style
mixnet with N layers of mix nodes, fixed-size layered-AEAD packets,
Poisson per-hop delays, loop/drop cover traffic, and single-use reply
blocks for bidirectional flows.

* :mod:`repro.mixnet.packet` — the fixed-size packet format: one
  ChaCha20-Poly1305 layer per hop over X25519-derived keys, peeled one
  layer per mix; reply blocks (SURBs) for the return path.
* :mod:`repro.mixnet.topology` — the stratified deployment: L layers of
  M nodes each, forward paths pick one node per layer.
* :mod:`repro.mixnet.client` — the :class:`~repro.anonymizers.base.Anonymizer`
  implementation registered as ``"mixnet"``.
"""

from repro.mixnet.client import MixnetClient
from repro.mixnet.packet import (
    LAYER_OVERHEAD_BYTES,
    PAYLOAD_BYTES,
    ReplyBlock,
    build_packet,
    build_reply_block,
    open_body,
    open_reply,
    packet_bytes,
)
from repro.mixnet.topology import MixNode, MixTopology

__all__ = [
    "LAYER_OVERHEAD_BYTES",
    "PAYLOAD_BYTES",
    "MixNode",
    "MixTopology",
    "MixnetClient",
    "ReplyBlock",
    "build_packet",
    "build_reply_block",
    "open_body",
    "open_reply",
    "packet_bytes",
]
