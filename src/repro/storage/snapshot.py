"""Serializable snapshots of a COW overlay's dirty blocks.

A snapshot is what the Nym Manager compresses, encrypts and ships to cloud
storage (§3.5): only the writable layer travels, since the base image is
the public Nymix distribution everyone already has.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict

from repro.errors import StorageError
from repro.storage.block import BLOCK_SIZE
from repro.storage.image import CowOverlay

_HEADER = b"NYMSNAP1"


@dataclass
class DiskSnapshot:
    """The dirty blocks of one overlay, keyed by block index."""

    block_count: int
    blocks: Dict[int, bytes]

    @classmethod
    def capture(cls, overlay: CowOverlay) -> "DiskSnapshot":
        # Walk the overlay's dirty set, not the sparse RAM disk: an explicit
        # zero write shadows the base and must survive the snapshot.
        blocks = {
            index: overlay.writable.read_block(index)
            for index in overlay.dirty_indices()
        }
        return cls(block_count=overlay.block_count, blocks=blocks)

    def apply_to(self, overlay: CowOverlay) -> None:
        """Replay the snapshot onto a fresh overlay of matching geometry."""
        if overlay.block_count != self.block_count:
            raise StorageError(
                f"snapshot geometry {self.block_count} != overlay {overlay.block_count}"
            )
        overlay.discard_changes()
        for index, data in sorted(self.blocks.items()):
            overlay.write_block(index, data)

    @property
    def raw_bytes(self) -> int:
        return len(self.blocks) * BLOCK_SIZE

    # -- wire format ---------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        """Serialize (optionally zlib-compressed) for encryption + upload."""
        payload = bytearray()
        for index, data in sorted(self.blocks.items()):
            payload += struct.pack("<I", index)
            payload += data
        body = zlib.compress(bytes(payload), level=6) if compress else bytes(payload)
        flags = 1 if compress else 0
        return _HEADER + struct.pack("<IIB", self.block_count, len(self.blocks), flags) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DiskSnapshot":
        if len(data) < len(_HEADER) + 9 or not data.startswith(_HEADER):
            raise StorageError("not a Nymix disk snapshot")
        offset = len(_HEADER)
        block_count, entries, flags = struct.unpack("<IIB", data[offset : offset + 9])
        body = data[offset + 9 :]
        if flags & 1:
            body = zlib.decompress(body)
        expected = entries * (4 + BLOCK_SIZE)
        if len(body) != expected:
            raise StorageError(
                f"snapshot body length {len(body)} != expected {expected}"
            )
        blocks: Dict[int, bytes] = {}
        for i in range(entries):
            start = i * (4 + BLOCK_SIZE)
            (index,) = struct.unpack("<I", body[start : start + 4])
            blocks[index] = body[start + 4 : start + 4 + BLOCK_SIZE]
        return cls(block_count=block_count, blocks=blocks)
