"""Base images and copy-on-write overlays."""

from __future__ import annotations

import hashlib
from typing import Optional, Set

from repro.crypto.merkle import MerkleTree
from repro.errors import ReadOnlyError, StorageError
from repro.storage.block import BLOCK_SIZE, BlockDevice, RamDisk


class BaseImage(BlockDevice):
    """A read-only OS image with deterministic, content-addressed blocks.

    Real base images are gigabytes of installed OS; here each block's
    content derives from ``(image_id, index)`` so two devices created from
    the same image id are bit-identical (the property Nymix relies on when
    it boots hypervisor, AnonVMs and CommVMs all from one USB partition).
    """

    def __init__(self, image_id: str, block_count: int) -> None:
        super().__init__(block_count, read_only=True)
        if not image_id:
            raise StorageError("image id must be non-empty")
        self.image_id = image_id

    def read_block(self, index: int) -> bytes:
        self._check_index(index)
        seed = hashlib.sha256(f"{self.image_id}:{index}".encode()).digest()
        # Expand the 32-byte digest to a full block deterministically.
        reps = BLOCK_SIZE // len(seed)
        return seed * reps

    def write_block(self, index: int, data: bytes) -> None:
        raise ReadOnlyError(f"base image {self.image_id!r} is immutable")

    def merkle_tree(self) -> MerkleTree:
        """Commit to the whole image (the §3.4 verified-boot proposal)."""
        return MerkleTree([self.read_block(i) for i in range(self.block_count)])

    def __repr__(self) -> str:
        return f"BaseImage(id={self.image_id!r}, blocks={self.block_count})"


class CowOverlay(BlockDevice):
    """Copy-on-write device: reads fall through to a base, writes stay local.

    This is both the qcow2-style VM disk and the installed-OS COW disk of
    §3.7 — no write ever reaches the underlying base device.
    """

    def __init__(self, base: BlockDevice, writable: Optional[RamDisk] = None) -> None:
        super().__init__(base.block_count, read_only=False)
        self.base = base
        self.writable = writable if writable is not None else RamDisk(base.block_count)
        if self.writable.block_count != base.block_count:
            raise StorageError("overlay and base geometries differ")
        self._dirty: Set[int] = set(
            index for index, _ in self.writable.iter_allocated()
        )

    def read_block(self, index: int) -> bytes:
        self._check_index(index)
        if index in self._dirty:
            return self.writable.read_block(index)
        return self.base.read_block(index)

    def write_block(self, index: int, data: bytes) -> None:
        self._check_write(index, data)
        self.writable.write_block(index, data)
        self._dirty.add(index)

    @property
    def dirty_blocks(self) -> int:
        return len(self._dirty)

    def dirty_indices(self):
        """Indices shadowing the base (including explicit zero writes)."""
        return sorted(self._dirty)

    @property
    def used_bytes(self) -> int:
        """RAM consumed by the writable layer (what Figure 6 measures)."""
        return self.dirty_blocks * BLOCK_SIZE

    def discard_changes(self) -> int:
        """Throw away every write, reverting to the pristine base."""
        dropped = len(self._dirty)
        self.writable.wipe()
        self._dirty.clear()
        return dropped

    def __repr__(self) -> str:
        return f"CowOverlay(base={self.base!r}, dirty={self.dirty_blocks})"
