"""Block-level storage: devices, base images, copy-on-write overlays.

Every VM disk in Nymix is a copy-on-write overlay above a read-only base
image — the USB stick's OS partition for nymboxes (§3.4), or the machine's
physical disk for installed-OS nyms (§3.7).  Writable layers are sparse and
RAM-backed, which is exactly how the paper accounts for them ("the host
allocates disk and RAM from its own stash of RAM").
"""

from repro.storage.block import BLOCK_SIZE, BlockDevice, RamDisk
from repro.storage.image import BaseImage, CowOverlay
from repro.storage.snapshot import DiskSnapshot

__all__ = [
    "BLOCK_SIZE",
    "BlockDevice",
    "RamDisk",
    "BaseImage",
    "CowOverlay",
    "DiskSnapshot",
]
