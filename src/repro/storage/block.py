"""Block devices: the abstract interface and a sparse RAM-backed disk."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import ReadOnlyError, StorageError

BLOCK_SIZE = 4096  # bytes

_ZERO_BLOCK = b"\x00" * BLOCK_SIZE


class BlockDevice:
    """Abstract fixed-geometry block device."""

    def __init__(self, block_count: int, read_only: bool = False) -> None:
        if block_count <= 0:
            raise StorageError(f"block count must be positive, got {block_count}")
        self.block_count = block_count
        self.read_only = read_only

    @property
    def size_bytes(self) -> int:
        return self.block_count * BLOCK_SIZE

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.block_count:
            raise StorageError(
                f"block {index} out of range [0, {self.block_count}) on {self!r}"
            )

    def read_block(self, index: int) -> bytes:
        raise NotImplementedError

    def write_block(self, index: int, data: bytes) -> None:
        raise NotImplementedError

    def _check_write(self, index: int, data: bytes) -> None:
        if self.read_only:
            raise ReadOnlyError(f"write to read-only device {self!r}")
        self._check_index(index)
        if len(data) != BLOCK_SIZE:
            raise StorageError(
                f"block writes must be exactly {BLOCK_SIZE} bytes, got {len(data)}"
            )


class RamDisk(BlockDevice):
    """Sparse RAM-backed device; unwritten blocks read as zeros."""

    def __init__(self, block_count: int, read_only: bool = False) -> None:
        super().__init__(block_count, read_only=read_only)
        self._blocks: Dict[int, bytes] = {}

    def read_block(self, index: int) -> bytes:
        self._check_index(index)
        return self._blocks.get(index, _ZERO_BLOCK)

    def write_block(self, index: int, data: bytes) -> None:
        self._check_write(index, data)
        if data == _ZERO_BLOCK:
            self._blocks.pop(index, None)  # stay sparse
        else:
            self._blocks[index] = bytes(data)

    def discard(self, index: int) -> None:
        """Drop a block back to the zero state (TRIM)."""
        self._check_index(index)
        self._blocks.pop(index, None)

    @property
    def allocated_blocks(self) -> int:
        return len(self._blocks)

    @property
    def used_bytes(self) -> int:
        return self.allocated_blocks * BLOCK_SIZE

    def iter_allocated(self) -> Iterator[Tuple[int, bytes]]:
        return iter(sorted(self._blocks.items()))

    def wipe(self) -> int:
        """Securely discard every block.  Returns blocks wiped."""
        wiped = len(self._blocks)
        self._blocks.clear()
        return wiped

    def __repr__(self) -> str:
        return f"RamDisk(blocks={self.block_count}, allocated={self.allocated_blocks})"
