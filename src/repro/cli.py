"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction an operator's console:

* ``validate``  — run the §5.1 validation against a live deployment
* ``redteam``   — run the full adversarial sweep and print the report
* ``demo``      — the quickstart workflow, narrated
* ``catalog``   — what the simulated world contains (sites, OSes, transports)
* ``stats``     — run a scenario and dump the metrics snapshot
  (``--scale DIR`` instead reads a sharded run's per-epoch metrics
  spools back from its spool directory)
* ``trace``     — run a scenario and print the sim-time span tree
* ``bench``     — time the simulator's hot paths against the seed code
* ``chaos``     — run a seeded fault-injection scenario, print the survival report
* ``fleet``     — place ~1000 nymboxes over a simulated 64-host cluster
  (``--shards N`` runs the sharded scale-out path with streamed journal
  spools and epoch-barrier checkpoints; ``--procs N`` spreads the shards
  over N spawned OS workers with byte-identical journals; ``--resume
  DIR`` continues a killed sharded run under either executor)
* ``sweep``     — chart anonymity/latency/overhead across Tor, Dissent, mixnet
* ``tenants``   — run the multi-tenant control-plane scenario: quotas,
  launch/ingress rate limits, a reconciled mid-run policy update, and a
  zero-loss rolling host drain

Every subcommand accepts the same three flags: ``--seed`` (overrides the
global ``--seed``), ``--duration`` (extra simulated seconds before the
report, where the command has a timeline), and ``--json`` (a
machine-readable report on stdout).  ``fleet``, ``tenants``, ``chaos``,
and ``sweep`` additionally share ``--tenant-config FILE`` — one JSON
policy file, one parser (:func:`repro.tenancy.load_tenant_config`).
Commands are built on the :class:`repro.api.NymixSession` facade.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import List, Optional

from repro.anonymizers.base import ANONYMIZER_REGISTRY
from repro.api import NymixSession
from repro.core.validation import validate_system
from repro.guest.installed_os import INSTALLED_OS_CATALOG
from repro.guest.websites import WEBSITE_CATALOG


# -- shared flag plumbing ----------------------------------------------------


def add_common_args(sub: argparse.ArgumentParser, journal: bool = False) -> None:
    """The flags every ``repro`` subcommand understands.

    ``--seed`` shadows the global flag (the subcommand value wins);
    ``--duration`` adds simulated idle seconds before reporting;
    ``--json`` switches the report to machine-readable JSON.
    """
    sub.add_argument(
        "--seed", dest="sub_seed", type=int, default=None, metavar="N",
        help="simulation seed (overrides the global --seed)",
    )
    sub.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="extra simulated seconds to run before reporting",
    )
    sub.add_argument(
        "--json", action="store_true", help="emit a JSON report on stdout"
    )
    if journal:
        sub.add_argument(
            "--journal", metavar="PATH", help="also write the event journal (JSONL)"
        )


def add_tenant_config_arg(sub: argparse.ArgumentParser) -> None:
    """The shared ``--tenant-config FILE`` flag (fleet, tenants, chaos, sweep)."""
    sub.add_argument(
        "--tenant-config", metavar="FILE", default=None,
        help="JSON tenant policy file (tenants, quotas, rate limits, "
        "qos classes, autoscale)",
    )


def load_policies(args: argparse.Namespace):
    """Parse ``--tenant-config`` into a FleetPolicies, or ``None``.

    Exits with status 2 on a malformed file — a policy typo must not
    silently run the scenario unlimited.
    """
    path = getattr(args, "tenant_config", None)
    if not path:
        return None
    from repro.errors import TenancyError
    from repro.tenancy.policy import load_tenant_config

    try:
        return load_tenant_config(path)
    except TenancyError as exc:
        print(f"--tenant-config: {exc}", file=sys.stderr)
        raise SystemExit(2)


def effective_seed(args: argparse.Namespace) -> int:
    if getattr(args, "sub_seed", None) is not None:
        return args.sub_seed
    return args.seed


def _session(args: argparse.Namespace) -> NymixSession:
    return NymixSession(seed=effective_seed(args))


def _idle(session: NymixSession, args: argparse.Namespace) -> None:
    if args.duration:
        session.timeline.sleep(args.duration)


def _write_journal(obs, path: str) -> int:
    try:
        obs.journal.write_jsonl(path)
    except OSError as exc:
        print(f"cannot write journal to {path}: {exc}", file=sys.stderr)
        return 1
    print(f"journal: {obs.journal.count()} events -> {path}", file=sys.stderr)
    return 0


def _emit_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


# -- commands ----------------------------------------------------------------


def cmd_validate(args: argparse.Namespace) -> int:
    with _session(args) as nx:
        for index in range(args.nyms):
            nymbox = nx.create_nym(name=f"validate-{index}")
            nx.timed_browse(nymbox, "bbc.co.uk")
        _idle(nx, args)
        result = validate_system(nx.manager, idle_seconds=args.idle)
        if args.json:
            _emit_json(
                {
                    "passed": result.passed,
                    "dns_leaks": result.dns_leaks,
                    "isolation_violations": len(result.isolation.violations),
                    "anonvm_emitted_uplink_traffic": result.anonvm_emitted_uplink_traffic,
                    "summary": result.summary(),
                }
            )
        else:
            print(result.summary())
        return 0 if result.passed else 1


def cmd_redteam(args: argparse.Namespace) -> int:
    from repro.attacks.redteam import run_red_team

    with _session(args) as nx:
        report = run_red_team(nx.manager, nyms=args.nyms)
        _idle(nx, args)
        if args.json:
            _emit_json(
                {
                    "all_contained": report.all_contained,
                    "outcomes": [dataclasses.asdict(o) for o in report.outcomes],
                }
            )
        else:
            print(report.summary())
        return 0 if report.all_contained else 1


def cmd_demo(args: argparse.Namespace) -> int:
    quiet = args.json
    with _session(args) as nx:
        nx.create_cloud_account("dropbox.com", "demo-user", "cloud-pw")
        if not quiet:
            print("starting a fresh nym...")
        nymbox = nx.create_nym(name="demo")
        if not quiet:
            print(f"  up in {nymbox.startup.total_s:.1f} s "
                  f"(boot {nymbox.startup.boot_vm_s:.1f}, "
                  f"tor {nymbox.startup.start_anonymizer_s:.1f})")
        load = nx.timed_browse(nymbox, "twitter.com")
        if not quiet:
            print(f"  twitter.com in {load.duration_s:.1f} s via exit "
                  f"{nymbox.anonymizer.exit_address()}")
        receipt = nx.store_nym(
            nymbox, password="demo-pw",
            provider_host="dropbox.com", account_username="demo-user",
        )
        if not quiet:
            print(f"  stored: {receipt.encrypted_bytes / 2**20:.1f} MiB encrypted")
        nx.discard_nym(nymbox)
        restored = nx.load_nym("demo", "demo-pw")
        if not quiet:
            print(f"  restored with warm tor start "
                  f"({restored.startup.start_anonymizer_s:.1f} s) and "
                  f"{len(restored.browser.history)} history entries")
        _idle(nx, args)
        if args.json:
            _emit_json(
                {
                    "startup_s": round(nymbox.startup.total_s, 3),
                    "page_load_s": round(load.duration_s, 3),
                    "stored_bytes": receipt.encrypted_bytes,
                    "restored_history_entries": len(restored.browser.history),
                }
            )
        elif not quiet:
            print("done.")
        return 0


def _run_observed_scenario(args: argparse.Namespace, nyms: int) -> NymixSession:
    """A small instrumented workload for ``stats``/``trace``: create nyms,
    browse, store one, discard all."""
    nx = _session(args).open()
    nx.create_cloud_account("dropbox.com", "obs-user", "cloud-pw")
    boxes = []
    for index in range(nyms):
        nymbox = nx.create_nym(name=f"obs-{index}")
        nx.timed_browse(nymbox, "bbc.co.uk")
        boxes.append(nymbox)
    if boxes:
        nx.store_nym(
            boxes[0], password="obs-pw",
            provider_host="dropbox.com", account_username="obs-user",
        )
    for nymbox in boxes:
        nx.discard_nym(nymbox)
    _idle(nx, args)
    return nx


def _cmd_stats_scale(args: argparse.Namespace) -> int:
    """``repro stats --scale DIR``: read a sharded run's metrics spools.

    Renders the coordinator's merged per-epoch stream (one row per epoch
    barrier) plus a per-shard event count, straight from the
    ``*.metrics.jsonl`` spools a sharded run streamed to disk.
    """
    from repro.errors import FleetError
    from repro.fleet.shard import load_scale_metrics
    from repro.vmm.vm import MIB

    try:
        metrics = load_scale_metrics(args.scale)
    except (FleetError, OSError) as exc:
        print(f"--scale: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _emit_json(metrics)
        return 0
    merged = metrics["merged"]
    print(
        f"sharded metrics: {args.scale} "
        f"({len(merged)} epochs, {len(metrics['shards'])} shards)"
    )
    print(
        f"  {'epoch':>5} {'resident':>8} {'rejected':>8} {'evac':>5} "
        f"{'crashes':>7} {'used MiB':>9} {'ksm MiB':>8}"
    )
    for record in merged:
        print(
            f"  {record['epoch']:>5} {record['nyms_resident']:>8} "
            f"{record['rejected']:>8} {record['evacuations']:>5} "
            f"{record['host_crashes']:>7} "
            f"{record['used_bytes'] / MIB:>9.0f} "
            f"{record['ksm_saved_bytes'] / MIB:>8.0f}"
        )
    for name, records in metrics["shards"].items():
        last = records[-1] if records else {}
        print(
            f"  {name}: {len(records)} snapshots, "
            f"final resident {last.get('nyms_resident', 0)}, "
            f"final ksm {last.get('ksm_saved_bytes', 0) / MIB:.0f} MiB"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.scale:
        return _cmd_stats_scale(args)
    nx = _run_observed_scenario(args, args.nyms)
    obs = nx.obs
    # Surface journal health next to the metrics: a non-zero dropped
    # count means the byte-identity oracle is truncated and any journal
    # comparison for this run is meaningless.
    obs.metrics.gauge("obs.journal.events").set(len(obs.journal))
    obs.metrics.gauge("obs.journal.dropped").set(obs.journal.dropped)
    if args.journal and _write_journal(obs, args.journal):
        return 1
    if args.json:
        print(obs.metrics.export_json(args.prefix))
        return 0
    snapshot = obs.snapshot(args.prefix)
    if not snapshot:
        print(f"no metrics match prefix {args.prefix!r}")
        return 1
    width = max(len(name) for name in snapshot)
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram
            mean = value["sum"] / value["count"] if value["count"] else 0.0
            rendered = (
                f"count={value['count']} mean={mean:.4f} "
                f"min={value['min']:.4f} max={value['max']:.4f}"
            )
        else:
            rendered = f"{value:g}"
        print(f"  {name:<{width}}  {rendered}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    nx = _run_observed_scenario(args, args.nyms)
    tracer = nx.obs.tracer
    if args.json:
        print(tracer.export_json())
        return 0
    tree = tracer.render_tree()
    if not tree:
        print("no spans recorded")
        return 1
    print(tree)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perfbench import (
        BENCHES,
        format_results_table,
        save_bench_results,
        select_benches,
    )

    if args.list:
        width = max(len(name) for name in BENCHES)
        for name in sorted(BENCHES):
            bench = BENCHES[name]
            tags = ",".join(sorted(bench.tags))
            print(f"  {name:<{width}}  [{tags}] {bench.description}")
        return 0
    try:
        selected = select_benches(only=args.only, tag=args.tag)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    results = []
    for bench in selected:
        print(f"bench {bench.name} ...", file=sys.stderr)
        results.append(bench.run(args.quick))
    if args.json:
        _emit_json({"quick": args.quick, "results": [r.to_dict() for r in results]})
    else:
        print(format_results_table(results))
    if args.out:
        path = save_bench_results(args.out, results, quick=args.quick)
        print(f"results -> {path}", file=sys.stderr)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    manager, report = run_chaos(
        seed=effective_seed(args),
        quick=args.quick,
        duration_s=args.duration,
        anonymizer=args.anonymizer,
        policies=load_policies(args),
    )
    if args.json:
        _emit_json(
            {
                "seed": report.seed,
                "anonymizer": report.anonymizer,
                "survived": report.survived,
                "planned": report.planned,
                "injected": report.injected,
                "steps": [dataclasses.asdict(s) for s in report.steps],
                "journal_events": report.journal_events,
            }
        )
    else:
        print(report.summary())
    if args.journal and _write_journal(manager.obs, args.journal):
        return 1
    return 0 if report.survived else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet

    if args.resume or args.shards:
        return _cmd_fleet_sharded(args)
    hosts = args.hosts
    nyms = args.nyms
    if args.quick:
        hosts = min(hosts, 8)
        nyms = min(nyms, 60)
    report = run_fleet(
        seed=effective_seed(args),
        hosts=hosts,
        nyms=nyms,
        policy=args.policy,
        host_crashes=args.host_crashes,
        compare=not args.no_compare,
        journal_path=args.journal,
        out_path=args.out,
        idle_s=args.duration or 0.0,
        flash_clone=not args.cold_boot,
        policies=load_policies(args),
    )
    if args.json:
        _emit_json(report.export())
    else:
        print(report.summary())
        if args.out:
            print(f"report -> {args.out}", file=sys.stderr)
    if args.journal:
        print(f"journal -> {args.journal}", file=sys.stderr)
    return 0 if (args.no_compare or report.ksm_aware_beats_first_fit) else 1


def _cmd_fleet_sharded(args: argparse.Namespace) -> int:
    """The scale-out path: ``repro fleet --shards N`` / ``--resume DIR``."""
    from repro.fleet import resume_fleet_sharded, run_fleet_sharded

    procs = args.procs
    if procs == 0:
        from repro.fleet.parallel import default_procs

        procs = default_procs()
    if args.resume:
        report = resume_fleet_sharded(
            args.resume, journal_path=args.journal, out_path=args.out,
            procs=procs,
        )
    else:
        scale_counts = None
        if args.scale:
            scale_counts = [int(c) for c in args.scale.split(",") if c.strip()]
        shards = args.shards
        nyms = args.nyms
        hosts_per_shard = max(1, args.hosts // shards)
        if args.quick:
            shards = min(shards, 2)
            hosts_per_shard = min(hosts_per_shard, 4)
            nyms = min(nyms, 60)
        report = run_fleet_sharded(
            seed=effective_seed(args),
            shards=shards,
            hosts_per_shard=hosts_per_shard,
            nyms=nyms,
            policy=args.policy,
            epoch_s=args.epoch_s,
            host_crashes=args.host_crashes,
            spool_dir=args.spool_dir,
            checkpoint_dir=args.checkpoint_dir,
            stop_after_epoch=args.stop_after_epoch,
            journal_path=args.journal,
            out_path=args.out,
            flash_clone=not args.cold_boot,
            scale_counts=scale_counts,
            procs=procs,
        )
    if args.json:
        _emit_json(report.export())
    else:
        print(report.summary())
        if args.out:
            print(f"report -> {args.out}", file=sys.stderr)
    if args.journal:
        print(f"journal -> {args.journal}", file=sys.stderr)
    if not report.result.completed:
        checkpoint = args.resume or args.checkpoint_dir
        hint = (
            f"; resume with --resume {checkpoint}" if checkpoint
            else " (no --checkpoint-dir: this run cannot be resumed)"
        )
        print(
            f"stopped after epoch {report.result.epochs}{hint}",
            file=sys.stderr,
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweeps import run_sweep

    report = run_sweep(
        seed=effective_seed(args),
        quick=args.quick,
        idle_s=args.duration,
        journal_path=args.journal,
        out_path=args.out,
        policies=load_policies(args),
    )
    if args.json:
        _emit_json(report.export())
    else:
        print(report.summary())
        if args.out:
            print(f"report -> {args.out}", file=sys.stderr)
    if args.journal:
        print(f"journal -> {args.journal}", file=sys.stderr)
    return 0


def cmd_tenants(args: argparse.Namespace) -> int:
    from repro.tenancy.scenario import run_tenants

    hosts = args.hosts
    nyms = args.nyms
    drain_hosts = args.drain_hosts
    if args.quick:
        hosts = min(hosts, 8)
        nyms = min(nyms, 48)
        drain_hosts = min(drain_hosts, 2)
    report = run_tenants(
        seed=effective_seed(args),
        hosts=hosts,
        nyms=nyms,
        drain_hosts=drain_hosts,
        placement=args.policy,
        chaos=args.chaos,
        journal_path=args.journal,
        out_path=args.out,
        policies=load_policies(args),
    )
    if args.json:
        _emit_json(report.export())
    else:
        print(report.summary())
        if args.out:
            print(f"report -> {args.out}", file=sys.stderr)
    if args.journal:
        print(f"journal -> {args.journal}", file=sys.stderr)
    return 0 if report.zero_lost else 1


def cmd_catalog(args: argparse.Namespace) -> int:
    if args.json:
        _emit_json(
            {
                "anonymizers": sorted(ANONYMIZER_REGISTRY),
                "websites": sorted(WEBSITE_CATALOG),
                "installed_oses": list(INSTALLED_OS_CATALOG),
            }
        )
        return 0
    print("anonymizers:")
    for kind in sorted(ANONYMIZER_REGISTRY):
        print(f"  {kind}")
    print("  (compositions: any 'a+b'; camouflage: 'stegotorus[:inner]')")
    print("websites:")
    for hostname, site in sorted(WEBSITE_CATALOG.items()):
        login = " [login]" if site.requires_login else ""
        print(f"  {hostname}{login}")
    print("installed OSes:")
    for name, profile in INSTALLED_OS_CATALOG.items():
        repair = f"repair ~{profile.repair_seconds:.0f}s" if profile.needs_repair else "no repair"
        print(f"  {name} ({repair})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nymix reproduction: manage simulated nymboxes from the shell.",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="run the §5.1 validation")
    validate.add_argument("--nyms", type=int, default=4)
    validate.add_argument("--idle", type=float, default=30.0)
    add_common_args(validate)
    validate.set_defaults(func=cmd_validate)

    redteam = commands.add_parser("redteam", help="run the adversarial sweep")
    redteam.add_argument("--nyms", type=int, default=3)
    add_common_args(redteam)
    redteam.set_defaults(func=cmd_redteam)

    demo = commands.add_parser("demo", help="narrated quickstart workflow")
    add_common_args(demo)
    demo.set_defaults(func=cmd_demo)

    catalog = commands.add_parser("catalog", help="list the simulated world")
    add_common_args(catalog)
    catalog.set_defaults(func=cmd_catalog)

    stats = commands.add_parser("stats", help="run a scenario, dump metrics")
    stats.add_argument("--nyms", type=int, default=2)
    stats.add_argument("--prefix", default="", help="only metrics under this prefix")
    stats.add_argument(
        "--scale", metavar="DIR",
        help="read a sharded fleet run's per-epoch metrics spools from "
        "its spool directory instead of running a scenario",
    )
    add_common_args(stats, journal=True)
    stats.set_defaults(func=cmd_stats)

    trace = commands.add_parser("trace", help="run a scenario, print the span tree")
    trace.add_argument("--nyms", type=int, default=1)
    add_common_args(trace)
    trace.set_defaults(func=cmd_trace)

    bench = commands.add_parser("bench", help="time hot paths vs the seed code")
    bench.add_argument(
        "--quick", action="store_true", help="smaller inputs, shorter timing budget"
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this bench (repeatable)",
    )
    bench.add_argument("--tag", help="run only benches carrying this tag")
    bench.add_argument("--out", metavar="PATH", help="write results JSON here")
    bench.add_argument("--list", action="store_true", help="list available benches")
    add_common_args(bench)
    bench.set_defaults(func=cmd_bench)

    chaos = commands.add_parser(
        "chaos", help="run a seeded fault-injection scenario"
    )
    chaos.add_argument(
        "--quick", action="store_true", help="shorter fault window, fewer churns"
    )
    chaos.add_argument(
        "--anonymizer",
        choices=("tor", "mixnet"),
        default="tor",
        help="transport under test (mixnet adds mix-node churn faults)",
    )
    add_common_args(chaos, journal=True)
    add_tenant_config_arg(chaos)
    chaos.set_defaults(func=cmd_chaos)

    sweep = commands.add_parser(
        "sweep", help="chart the anonymity/latency/overhead tradeoff surface"
    )
    sweep.add_argument(
        "--quick", action="store_true", help="2x2 mixnet grid and a short idle tail"
    )
    sweep.add_argument("--out", metavar="PATH", help="write the tradeoff JSON here")
    add_common_args(sweep, journal=True)
    add_tenant_config_arg(sweep)
    sweep.set_defaults(func=cmd_sweep)

    fleet = commands.add_parser(
        "fleet", help="schedule nymboxes across a simulated host cluster"
    )
    fleet.add_argument("--hosts", type=int, default=64, help="hosts in the fleet")
    fleet.add_argument("--nyms", type=int, default=1000, help="nymboxes to launch")
    fleet.add_argument(
        "--policy",
        default="ksm-aware",
        choices=["first-fit", "least-loaded", "ksm-aware"],
        help="placement policy under test (owns the journal)",
    )
    fleet.add_argument(
        "--host-crashes", type=int, default=2, help="host-crash faults to inject"
    )
    fleet.add_argument(
        "--cold-boot",
        action="store_true",
        help="disable the flash-clone launch path (cold-boot every nymbox; "
        "same-seed journals must match the default cloned run byte for byte)",
    )
    fleet.add_argument(
        "--no-compare",
        action="store_true",
        help="run only --policy instead of comparing all policies",
    )
    fleet.add_argument(
        "--quick", action="store_true", help="small cluster (<=8 hosts, <=60 nyms)"
    )
    fleet.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_fleet.json",
        help="placement/savings report path (default BENCH_fleet.json)",
    )
    fleet.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="run the sharded scale-out path with N regions "
        "(--hosts is split evenly across shards; 0 = classic single timeline)",
    )
    fleet.add_argument(
        "--epoch-s", type=float, default=120.0, metavar="SECONDS",
        help="simulated seconds between shard barriers (sharded path)",
    )
    fleet.add_argument(
        "--spool-dir", default="fleet-spool", metavar="DIR",
        help="directory for the streamed journal spools (sharded path)",
    )
    fleet.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="checkpoint the run at every epoch barrier into DIR (sharded path)",
    )
    fleet.add_argument(
        "--stop-after-epoch", type=int, metavar="K",
        help="stop after K epoch barriers (with --checkpoint-dir: the kill "
        "half of kill/resume)",
    )
    fleet.add_argument(
        "--resume", metavar="DIR",
        help="resume a killed sharded run from its checkpoint directory",
    )
    fleet.add_argument(
        "--scale", metavar="N,M,...",
        help="also chart the capacity trajectory across these shard counts "
        "(sharded path; writes the scale_trajectory section of --out)",
    )
    fleet.add_argument(
        "--procs", type=int, default=1, metavar="N",
        help="run shards across N spawned OS worker processes (sharded "
        "path; 0 = one per core; journal bytes are identical at any N)",
    )
    add_common_args(fleet, journal=True)
    add_tenant_config_arg(fleet)
    fleet.set_defaults(func=cmd_fleet)

    tenants = commands.add_parser(
        "tenants", help="run the multi-tenant control-plane scenario"
    )
    tenants.add_argument("--hosts", type=int, default=64, help="hosts in the fleet")
    tenants.add_argument(
        "--nyms", type=int, default=240, help="tenant-attributed arrivals"
    )
    tenants.add_argument(
        "--drain-hosts", type=int, default=8,
        help="hosts to rolling-drain (upgrade) after the waves",
    )
    tenants.add_argument(
        "--policy",
        default="first-fit",
        choices=["first-fit", "least-loaded", "ksm-aware"],
        help="placement policy for the run",
    )
    tenants.add_argument(
        "--chaos", action="store_true",
        help="inject a tenant burst plus a drain-during-crash overlap",
    )
    tenants.add_argument(
        "--quick", action="store_true",
        help="small cluster (<=8 hosts, <=48 arrivals, 2 drains)",
    )
    tenants.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_tenants.json",
        help="per-tenant outcome report path (default BENCH_tenants.json)",
    )
    add_common_args(tenants, journal=True)
    add_tenant_config_arg(tenants)
    tenants.set_defaults(func=cmd_tenants)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
