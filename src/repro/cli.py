"""Command-line interface: ``python -m repro <command>``.

Gives the reproduction an operator's console:

* ``validate``  — run the §5.1 validation against a live deployment
* ``redteam``   — run the full adversarial sweep and print the report
* ``demo``      — the quickstart workflow, narrated
* ``catalog``   — what the simulated world contains (sites, OSes, transports)
* ``stats``     — run a scenario and dump the metrics snapshot
* ``trace``     — run a scenario and print the sim-time span tree
* ``bench``     — time the simulator's hot paths against the seed code
* ``chaos``     — run a seeded fault-injection scenario, print the survival report
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.anonymizers.base import ANONYMIZER_REGISTRY
from repro.cloud import make_dropbox, make_google_drive
from repro.core import NymManager, NymixConfig
from repro.core.validation import validate_system
from repro.guest.installed_os import INSTALLED_OS_CATALOG
from repro.guest.websites import WEBSITE_CATALOG


def _make_manager(seed: int) -> NymManager:
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    manager.add_cloud_provider(make_google_drive())
    return manager


def cmd_validate(args: argparse.Namespace) -> int:
    manager = _make_manager(args.seed)
    for index in range(args.nyms):
        nymbox = manager.create_nym(f"validate-{index}")
        manager.timed_browse(nymbox, "bbc.co.uk")
    result = validate_system(manager, idle_seconds=args.idle)
    print(result.summary())
    return 0 if result.passed else 1


def cmd_redteam(args: argparse.Namespace) -> int:
    from repro.attacks.redteam import run_red_team

    manager = _make_manager(args.seed)
    report = run_red_team(manager, nyms=args.nyms)
    print(report.summary())
    return 0 if report.all_contained else 1


def cmd_demo(args: argparse.Namespace) -> int:
    manager = _make_manager(args.seed)
    manager.create_cloud_account("dropbox.com", "demo-user", "cloud-pw")
    print("starting a fresh nym...")
    nymbox = manager.create_nym("demo")
    print(f"  up in {nymbox.startup.total_s:.1f} s "
          f"(boot {nymbox.startup.boot_vm_s:.1f}, tor {nymbox.startup.start_anonymizer_s:.1f})")
    load = manager.timed_browse(nymbox, "twitter.com")
    print(f"  twitter.com in {load.duration_s:.1f} s via exit "
          f"{nymbox.anonymizer.exit_address()}")
    receipt = manager.store_nym(
        nymbox, "demo-pw", provider_host="dropbox.com", account_username="demo-user"
    )
    print(f"  stored: {receipt.encrypted_bytes / 2**20:.1f} MiB encrypted")
    manager.discard_nym(nymbox)
    restored = manager.load_nym("demo", "demo-pw")
    print(f"  restored with warm tor start "
          f"({restored.startup.start_anonymizer_s:.1f} s) and "
          f"{len(restored.browser.history)} history entries")
    manager.discard_nym(restored)
    print("done.")
    return 0


def _run_observed_scenario(seed: int, nyms: int) -> NymManager:
    """A small instrumented workload for ``stats``/``trace``: create nyms,
    browse, store one, discard all."""
    manager = _make_manager(seed)
    manager.create_cloud_account("dropbox.com", "obs-user", "cloud-pw")
    boxes = []
    for index in range(nyms):
        nymbox = manager.create_nym(f"obs-{index}")
        manager.timed_browse(nymbox, "bbc.co.uk")
        boxes.append(nymbox)
    if boxes:
        manager.store_nym(
            boxes[0], "obs-pw", provider_host="dropbox.com", account_username="obs-user"
        )
    for nymbox in boxes:
        manager.discard_nym(nymbox)
    return manager


def cmd_stats(args: argparse.Namespace) -> int:
    manager = _run_observed_scenario(args.seed, args.nyms)
    obs = manager.obs
    if args.journal:
        try:
            obs.journal.write_jsonl(args.journal)
        except OSError as exc:
            print(f"cannot write journal to {args.journal}: {exc}", file=sys.stderr)
            return 1
        print(f"journal: {obs.journal.count()} events -> {args.journal}", file=sys.stderr)
    if args.json:
        print(obs.metrics.export_json(args.prefix))
        return 0
    snapshot = obs.snapshot(args.prefix)
    if not snapshot:
        print(f"no metrics match prefix {args.prefix!r}")
        return 1
    width = max(len(name) for name in snapshot)
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram
            mean = value["sum"] / value["count"] if value["count"] else 0.0
            rendered = (
                f"count={value['count']} mean={mean:.4f} "
                f"min={value['min']:.4f} max={value['max']:.4f}"
            )
        else:
            rendered = f"{value:g}"
        print(f"  {name:<{width}}  {rendered}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    manager = _run_observed_scenario(args.seed, args.nyms)
    tree = manager.obs.tracer.render_tree()
    if not tree:
        print("no spans recorded")
        return 1
    print(tree)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perfbench import (
        BENCHES,
        format_results_table,
        save_bench_results,
        select_benches,
    )

    if args.list:
        width = max(len(name) for name in BENCHES)
        for name in sorted(BENCHES):
            bench = BENCHES[name]
            tags = ",".join(sorted(bench.tags))
            print(f"  {name:<{width}}  [{tags}] {bench.description}")
        return 0
    try:
        selected = select_benches(only=args.only, tag=args.tag)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    results = []
    for bench in selected:
        print(f"bench {bench.name} ...", file=sys.stderr)
        results.append(bench.run(args.quick))
    print(format_results_table(results))
    if args.out:
        path = save_bench_results(args.out, results, quick=args.quick)
        print(f"results -> {path}", file=sys.stderr)
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos

    manager, report = run_chaos(seed=args.seed, quick=args.quick)
    print(report.summary())
    if args.journal:
        try:
            manager.obs.journal.write_jsonl(args.journal)
        except OSError as exc:
            print(f"cannot write journal to {args.journal}: {exc}", file=sys.stderr)
            return 1
        print(
            f"journal: {manager.obs.journal.count()} events -> {args.journal}",
            file=sys.stderr,
        )
    return 0 if report.survived else 1


def cmd_catalog(args: argparse.Namespace) -> int:
    print("anonymizers:")
    for kind in sorted(ANONYMIZER_REGISTRY):
        print(f"  {kind}")
    print("  (compositions: any 'a+b'; camouflage: 'stegotorus[:inner]')")
    print("websites:")
    for hostname, site in sorted(WEBSITE_CATALOG.items()):
        login = " [login]" if site.requires_login else ""
        print(f"  {hostname}{login}")
    print("installed OSes:")
    for name, profile in INSTALLED_OS_CATALOG.items():
        repair = f"repair ~{profile.repair_seconds:.0f}s" if profile.needs_repair else "no repair"
        print(f"  {name} ({repair})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nymix reproduction: manage simulated nymboxes from the shell.",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    commands = parser.add_subparsers(dest="command", required=True)

    validate = commands.add_parser("validate", help="run the §5.1 validation")
    validate.add_argument("--nyms", type=int, default=4)
    validate.add_argument("--idle", type=float, default=30.0)
    validate.set_defaults(func=cmd_validate)

    redteam = commands.add_parser("redteam", help="run the adversarial sweep")
    redteam.add_argument("--nyms", type=int, default=3)
    redteam.set_defaults(func=cmd_redteam)

    demo = commands.add_parser("demo", help="narrated quickstart workflow")
    demo.set_defaults(func=cmd_demo)

    catalog = commands.add_parser("catalog", help="list the simulated world")
    catalog.set_defaults(func=cmd_catalog)

    stats = commands.add_parser("stats", help="run a scenario, dump metrics")
    stats.add_argument("--nyms", type=int, default=2)
    stats.add_argument("--prefix", default="", help="only metrics under this prefix")
    stats.add_argument("--json", action="store_true", help="emit canonical JSON")
    stats.add_argument("--journal", metavar="PATH", help="also write the event journal (JSONL)")
    stats.set_defaults(func=cmd_stats)

    trace = commands.add_parser("trace", help="run a scenario, print the span tree")
    trace.add_argument("--nyms", type=int, default=1)
    trace.set_defaults(func=cmd_trace)

    bench = commands.add_parser("bench", help="time hot paths vs the seed code")
    bench.add_argument(
        "--quick", action="store_true", help="smaller inputs, shorter timing budget"
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this bench (repeatable)",
    )
    bench.add_argument("--tag", help="run only benches carrying this tag")
    bench.add_argument("--out", metavar="PATH", help="write results JSON here")
    bench.add_argument("--list", action="store_true", help="list available benches")
    bench.set_defaults(func=cmd_bench)

    chaos = commands.add_parser(
        "chaos", help="run a seeded fault-injection scenario"
    )
    chaos.add_argument(
        "--quick", action="store_true", help="shorter fault window, fewer churns"
    )
    chaos.add_argument(
        "--journal", metavar="PATH", help="also write the event journal (JSONL)"
    )
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
