"""A Tails-like amnesiac live system (§6 / [68]).

One environment: Tor, the browser, and the user's session all share a
single live OS booted from USB.  Amnesia is excellent (tmpfs root,
nothing persists), but:

* a browser exploit with root runs *in the same OS as the network stack*
  and can read the real IP and MAC (no CommVM between them);
* forgetting everything each boot forces fresh Tor entry guards per
  session (the §3.5 intersection hazard) and fresh logins (the Sabu
  habit hazard [63]);
* optional persistence lives on the same USB stick — seizable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.rng import SeededRng


@dataclass
class TailsSession:
    """One boot-to-shutdown session."""

    index: int
    guards: List[str]
    visited: List[str] = field(default_factory=list)
    typed_credentials: List[str] = field(default_factory=list)
    stains: Dict[str, str] = field(default_factory=dict)


class TailsLikeSystem:
    """The amnesiac single-environment baseline."""

    name = "tails-like"
    has_vm_isolation = False
    has_per_role_isolation = False  # one browser for everything in a session
    amnesiac_by_default = True
    persistent_storage_location = "same-usb"  # the confiscation hazard

    def __init__(self, rng: SeededRng, real_ip: str, guard_pool: int = 40) -> None:
        self.rng = rng
        self.real_ip = real_ip
        self._guard_pool = [f"guard{i:03d}" for i in range(guard_pool)]
        self.sessions: List[TailsSession] = []
        self._current: Optional[TailsSession] = None
        self.persistence_enabled = False
        self._persistent_stains: Dict[str, str] = {}
        self._persistent_credentials: List[str] = []

    # -- lifecycle ------------------------------------------------------------

    def boot(self) -> TailsSession:
        """Each boot selects *fresh* guards: state was forgotten."""
        session = TailsSession(
            index=len(self.sessions),
            guards=self.rng.sample(self._guard_pool, 3),
        )
        if self.persistence_enabled:
            session.stains.update(self._persistent_stains)
            session.typed_credentials.extend(self._persistent_credentials)
        self.sessions.append(session)
        self._current = session
        return session

    def shutdown(self) -> None:
        if self._current is None:
            return
        if self.persistence_enabled:
            self._persistent_stains.update(self._current.stains)
            self._persistent_credentials = list(self._current.typed_credentials)
        self._current = None

    @property
    def current(self) -> TailsSession:
        if self._current is None:
            raise RuntimeError("tails is not booted")
        return self._current

    # -- user actions -----------------------------------------------------------

    def browse(self, hostname: str) -> None:
        self.current.visited.append(hostname)

    def login(self, hostname: str, username: str, password: str) -> None:
        """No credential binding: the user types secrets anew each session."""
        self.current.typed_credentials.append(f"{hostname}:{username}")

    # -- adversarial probes ------------------------------------------------------

    def exploit_learns_real_ip(self) -> bool:
        """Browser exploit with root: same OS as the NIC -> real IP."""
        return True

    def plant_stain(self, stain_id: str) -> None:
        self.current.stains["evercookie"] = stain_id

    def stain_survives_reboot(self, stain_id: str) -> bool:
        self.shutdown()
        session = self.boot()
        return session.stains.get("evercookie") == stain_id

    def guards_across_sessions(self, sessions: int) -> int:
        """Distinct entry guards touched over N sessions (amnesia => many)."""
        for _ in range(sessions):
            self.boot()
            self.shutdown()
        distinct = set()
        for session in self.sessions[-sessions:]:
            distinct.update(session.guards)
        return len(distinct)

    def usb_forensics(self) -> List[str]:
        """What a seized USB stick reveals."""
        evidence = ["tails-distribution"]  # having Tails at all
        if self.persistence_enabled and (
            self._persistent_stains or self._persistent_credentials
        ):
            evidence.append("encrypted-persistent-volume")  # coercible [§2]
        return evidence
