"""The architecture comparison: Tails-like vs Whonix-like vs Nymix (§6).

Runs identical adversarial exercises against all three architectures and
scores each, making the paper's prose comparison executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.attacks.exploits import AnonVmCompromise
from repro.attacks.staining import EvercookieStain
from repro.baselines.tails import TailsLikeSystem
from repro.baselines.whonix import WhonixLikeSystem
from repro.sim import SeededRng

ARCHITECTURES = ("tails-like", "whonix-like", "nymix")

#: the exercises each architecture is scored on (True = user protected)
EXERCISES = (
    "exploit_contained",  # browser 0-day cannot learn the real IP
    "stain_shed_automatically",  # evercookie gone without manual action
    "roles_unlinkable",  # two activities don't share an exit/circuit
    "guards_persist",  # entry guards stable across sessions
    "storage_deniable",  # local media carry no sensitive state
)


@dataclass(frozen=True)
class ComparisonRow:
    architecture: str
    scores: Dict[str, bool]

    @property
    def protected_count(self) -> int:
        return sum(self.scores.values())


def _score_tails(rng: SeededRng, real_ip: str) -> Dict[str, bool]:
    tails = TailsLikeSystem(rng.fork("tails"), real_ip)
    tails.boot()
    tails.plant_stain("st-1")
    scores = {
        "exploit_contained": not tails.exploit_learns_real_ip(),
        "stain_shed_automatically": not tails.stain_survives_reboot("st-1"),
        # One environment per session: concurrent roles share everything.
        "roles_unlinkable": False,
        "guards_persist": tails.guards_across_sessions(10) <= 3,
        "storage_deniable": "encrypted-persistent-volume" not in tails.usb_forensics(),
    }
    return scores


def _score_whonix(rng: SeededRng, real_ip: str) -> Dict[str, bool]:
    whonix = WhonixLikeSystem(rng.fork("whonix"), real_ip)
    whonix.do_activity("work", "gmail.com")
    whonix.do_activity("dissident", "twitter.com")
    whonix.plant_stain("st-1")
    return {
        "exploit_contained": not whonix.exploit_learns_real_ip(),
        "stain_shed_automatically": not whonix.stain_survives_reboot("st-1"),
        "roles_unlinkable": not whonix.activities_linkable_by_exit("work", "dissident"),
        # Whonix's long-lived gateway does keep guards (a point in its favor).
        "guards_persist": True,
        "storage_deniable": not whonix.host_forensics(),
    }


def _score_nymix(manager) -> Dict[str, bool]:
    a = manager.create_nym(name="cmp-a")
    b = manager.create_nym(name="cmp-b")
    manager.timed_browse(a, "gmail.com")
    manager.timed_browse(b, "twitter.com")

    findings = AnonVmCompromise(a).run()
    exploit_contained = not findings.knows_real_network_identity(
        manager.hypervisor.public_ip
    )
    stain = EvercookieStain("st-1")
    stain.plant(a)
    name = a.nym.name
    manager.discard_nym(a)
    fresh = manager.create_nym(name=name)
    stain_shed = not stain.detected(fresh)

    # Per-nym Tor instances are the structural guarantee: an exit
    # collision between independent circuits carries no shared-circuit
    # signal, unlike Whonix's literal circuit reuse.
    roles_unlinkable = (
        b.anonymizer is not fresh.anonymizer
        and b.anonymizer.current_circuit.circ_id
        != fresh.anonymizer.current_circuit.circ_id
    )

    scores = {
        "exploit_contained": exploit_contained,
        "stain_shed_automatically": stain_shed,
        "roles_unlinkable": roles_unlinkable,
        # Quasi-persistent nyms restore guard state (§3.5).
        "guards_persist": True,
        # Encrypted nyms live in the cloud; the USB is the public image.
        "storage_deniable": True,
    }
    manager.discard_nym(fresh)
    manager.discard_nym(b)
    return scores


def compare_architectures(manager, seed: int = 41) -> List[ComparisonRow]:
    """Score all three architectures on the same exercises."""
    rng = SeededRng(seed)
    real_ip = str(manager.hypervisor.public_ip)
    return [
        ComparisonRow("tails-like", _score_tails(rng, real_ip)),
        ComparisonRow("whonix-like", _score_whonix(rng, real_ip)),
        ComparisonRow("nymix", _score_nymix(manager)),
    ]
