"""A Whonix-like static two-VM deployment (§6 / [75]).

Whonix pioneered the workstation/gateway split Nymix's AnonVM/CommVM
inherits, so browser exploits are contained.  The §6 differences:

* the VM pair is *static and user-managed*: one long-lived workstation
  image serves every activity, so a stain (or a private-browsing state
  bug [3]) persists "for the lifetime of the nym ... unless the user
  manually reinstalls Whonix";
* one shared Tor instance carries every role's traffic, so circuits and
  exit addresses can link activities (the §3.3 shared-anonymizer hazard);
* it installs onto the user's normal OS: no boot-from-USB deniability,
  no hardware-fingerprint defense, and the VM images themselves are
  discoverable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.rng import SeededRng


@dataclass
class WhonixActivity:
    """One user activity (a role, in Nymix terms) in the shared workstation."""

    label: str
    visited: List[str] = field(default_factory=list)
    exit_used: str = ""


class WhonixLikeSystem:
    """The static two-VM baseline."""

    name = "whonix-like"
    has_vm_isolation = True
    has_per_role_isolation = False  # one workstation VM for everything
    amnesiac_by_default = False
    persistent_storage_location = "installed-disk"

    def __init__(self, rng: SeededRng, real_ip: str, exit_pool: int = 12) -> None:
        self.rng = rng
        self.real_ip = real_ip
        self._exits = [f"exit{i:02d}" for i in range(exit_pool)]
        # One shared Tor: a circuit (and its exit) is reused across
        # whatever the user does within its lifetime.
        self._current_exit = self.rng.choice(self._exits)
        self.workstation_state: Dict[str, str] = {}  # the static VM image
        self.activities: List[WhonixActivity] = []
        self.reinstalls = 0

    # -- user actions ------------------------------------------------------------

    def do_activity(self, label: str, hostname: str) -> WhonixActivity:
        activity = WhonixActivity(label=label)
        activity.visited.append(hostname)
        activity.exit_used = self._current_exit  # shared circuit!
        self.activities.append(activity)
        return activity

    def rotate_circuit(self) -> None:
        self._current_exit = self.rng.choice(self._exits)

    # -- adversarial probes ----------------------------------------------------------

    def exploit_learns_real_ip(self) -> bool:
        """Workstation exploit is gateway-contained, like Nymix."""
        return False

    def plant_stain(self, stain_id: str) -> None:
        self.workstation_state["evercookie"] = stain_id

    def stain_survives_reboot(self, stain_id: str) -> bool:
        """The static image carries it until a manual reinstall (§3.3)."""
        return self.workstation_state.get("evercookie") == stain_id

    def reinstall(self) -> None:
        """The documented remedy: reset to pristine images, by hand."""
        self.workstation_state.clear()
        self.reinstalls += 1

    def activities_linkable_by_exit(self, label_a: str, label_b: str) -> bool:
        """Colluding destinations compare source exits across roles."""
        exits_a = {a.exit_used for a in self.activities if a.label == label_a}
        exits_b = {a.exit_used for a in self.activities if a.label == label_b}
        return bool(exits_a & exits_b)

    def host_forensics(self) -> List[str]:
        """What inspecting the user's installed machine reveals."""
        evidence = ["whonix-vm-images"]  # sitting on the normal disk
        if self.workstation_state:
            evidence.append("workstation-browsing-state")
        return evidence
