"""Baseline systems: Tails-like and Whonix-like deployments (§6).

The paper positions Nymix against two production systems:

* **Tails** [68] — an amnesiac live OS: Tor and the browser share one
  environment (no VM isolation), nothing persists by default, optional
  persistence lives *on the Tails USB stick itself*.
* **Whonix** [75] — a static, user-managed pair of VMs (workstation +
  gateway) installed on the user's normal OS: exploit isolation like
  Nymix's, but one long-lived browser VM for everything and one shared
  Tor instance.

These baselines implement the same adversarial probes as the Nymix
attack suite, so tests and the comparison benchmark can score all three
architectures on identical exercises.
"""

from repro.baselines.tails import TailsLikeSystem
from repro.baselines.whonix import WhonixLikeSystem
from repro.baselines.comparison import ARCHITECTURES, ComparisonRow, compare_architectures

__all__ = [
    "TailsLikeSystem",
    "WhonixLikeSystem",
    "ARCHITECTURES",
    "ComparisonRow",
    "compare_architectures",
]
