"""Exception hierarchy for the Nymix reproduction.

Every subsystem raises exceptions derived from :class:`NymixError` so that
callers can distinguish simulation-substrate failures from ordinary Python
errors.  The hierarchy mirrors the architecture: hypervisor/VM errors,
file-system errors, network errors, anonymizer errors, storage errors, and
nym-management errors.
"""

from __future__ import annotations


class NymixError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(NymixError):
    """Misuse of the discrete-event simulation kernel."""


class ObservabilityError(NymixError):
    """Misuse of the metrics/tracing/journal subsystem."""


class JournalOverflowError(ObservabilityError):
    """An in-memory event journal hit ``max_events`` with overflow=error."""


class CryptoError(NymixError):
    """Cryptographic failure (bad key sizes, failed authentication...)."""


class AuthenticationError(CryptoError):
    """An AEAD tag or MAC failed to verify."""


class MemoryError_(NymixError):
    """Host physical memory exhaustion or invalid page operations."""


class OutOfMemoryError(MemoryError_):
    """The host cannot satisfy an allocation request."""


class StorageError(NymixError):
    """Block device / disk image failures."""


class FileSystemError(NymixError):
    """Union file system failures."""


class ReadOnlyError(FileSystemError):
    """Write attempted on a read-only layer or mount."""


class IntegrityError(FileSystemError):
    """A Merkle-verified read found a corrupted base-image block."""


class NetworkError(NymixError):
    """Virtual network failures."""


class UnreachableError(NetworkError):
    """Destination does not exist or is blocked by isolation policy."""


class VmError(NymixError):
    """Virtual machine lifecycle errors."""


class VmStateError(VmError):
    """Operation invalid in the VM's current lifecycle state."""


class HypervisorError(NymixError):
    """Hypervisor-level admission or configuration failure."""


class AnonymizerError(NymixError):
    """Anonymizer (Tor / Dissent / incognito) failures."""


class CircuitError(AnonymizerError):
    """Tor circuit construction or extension failed."""


class MixnetError(AnonymizerError):
    """Mixnet packet processing or routing failed (dead node, replay, bad MAC)."""


class TransientError(NymixError):
    """A failure expected to clear on retry (injected or environmental)."""


class RetryExhaustedError(NymixError):
    """A retried operation ran out of attempts and gave up."""


class CloudError(NymixError):
    """Cloud storage provider failures."""


class TransientCloudError(CloudError, TransientError):
    """A cloud request died mid-flight; retrying may succeed."""


class QuotaExceededError(CloudError):
    """A cloud account exceeded its storage quota."""


class SanitizeError(NymixError):
    """SaniVM scrubbing pipeline failures."""


class NymError(NymixError):
    """Nym manager / nymbox lifecycle errors."""


class NymStateError(NymError):
    """Operation invalid for the nym's usage model or lifecycle state."""


class PersistenceError(NymError):
    """Saving or restoring quasi-persistent nym state failed."""


class FleetError(NymixError):
    """Multi-host fleet scheduling errors."""


class FleetCapacityError(FleetError):
    """Admission control rejected a placement: no host can take the nym."""


class ShardWorkerError(FleetError):
    """A shard worker process failed or died mid-run.

    Carries the shard the failure was observed on and the last epoch
    barrier the coordinator completed — the run stays resumable from the
    checkpoint taken at that barrier.
    """

    def __init__(
        self, message: str, shard_id=None, last_barrier=None
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.last_barrier = last_barrier


class TenancyError(NymixError):
    """Tenant control-plane errors (bad policy objects, unknown tenants)."""


class TenantQuotaError(FleetCapacityError):
    """Admission rejected a placement: the tenant is over quota.

    Subclasses :class:`FleetCapacityError` so existing ``except
    FleetCapacityError`` admission handlers keep working unchanged.
    """


class TenantRateLimitError(FleetCapacityError):
    """Admission rejected a placement: the tenant's launch bucket is dry."""
