"""Page-granular guest memory modelled as run-length content groups.

Accounting is O(groups), not O(pages): a gigabyte of privately dirtied
memory is one ``("unique", owner, lo, hi)`` run, not 262k dict entries.
Every mutation bumps :attr:`GuestMemory.dirty_epoch`, which lets the KSM
scanner keep an incremental cross-guest index instead of re-walking every
page group on each wakeup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import MemoryError_

PAGE_SIZE = 4096  # bytes, matching x86 small pages


def bytes_to_pages(size_bytes: int) -> int:
    """Round ``size_bytes`` up to whole pages."""
    if size_bytes < 0:
        raise MemoryError_(f"negative size: {size_bytes}")
    return (size_bytes + PAGE_SIZE - 1) // PAGE_SIZE


def pages_to_bytes(pages: int) -> int:
    return pages * PAGE_SIZE


# A content tag identifies *what* is on a group of pages.  Pages in
# different guests with equal content are KSM merge candidates.
#   ("zero",)                      — zero-filled pages (all one content)
#   ("image", image_id, lo, hi)    — pages backed by disk-image blocks
#                                    [lo, hi); block b in any guest holds
#                                    the same bytes as block b elsewhere
#   ("unique", owner_id, lo, hi)   — privately dirtied pages with serials
#                                    [lo, hi); never shareable
ContentTag = Tuple


ZERO_TAG: ContentTag = ("zero",)


def image_tag(image_id: str, block: int) -> ContentTag:
    """Tag for a single image-backed page (block granularity)."""
    return ("image", image_id, block)


def image_range_tag(image_id: str, lo: int, hi: int) -> ContentTag:
    """Tag for the image-backed block run [lo, hi)."""
    return ("image", image_id, lo, hi)


def unique_tag(owner_id: str, serial: int) -> ContentTag:
    """Tag for a single privately dirtied page."""
    return ("unique", owner_id, serial)


def unique_range_tag(owner_id: str, lo: int, hi: int) -> ContentTag:
    """Tag for the privately dirtied serial run [lo, hi)."""
    return ("unique", owner_id, lo, hi)


def is_mergeable(tag: ContentTag) -> bool:
    """Unique (privately dirtied) pages never merge; shared content does."""
    return tag[0] != "unique"


@dataclass(frozen=True)
class MemoryStats:
    """Point-in-time accounting for one guest's memory."""

    total_pages: int
    zero_pages: int
    image_pages: int
    unique_pages: int

    @property
    def total_bytes(self) -> int:
        return pages_to_bytes(self.total_pages)


def _add_image_run(segments: List[List[int]], lo: int, hi: int) -> None:
    """Overlay the run [lo, hi) (multiplicity 1) onto ``segments``.

    ``segments`` is a sorted, non-overlapping list of ``[lo, hi, mult]``
    entries.  Overlaps (the same block mapped twice) raise that span's
    multiplicity, matching the old per-block multiset exactly.
    """
    if hi <= lo:
        return
    events: List[Tuple[int, int]] = [(lo, 1), (hi, -1)]
    for s_lo, s_hi, mult in segments:
        events.append((s_lo, mult))
        events.append((s_hi, -mult))
    events.sort()
    segments.clear()
    depth = 0
    prev_point = None
    for point, delta in events:
        if prev_point is not None and depth > 0 and point > prev_point:
            if segments and segments[-1][1] == prev_point and segments[-1][2] == depth:
                segments[-1][1] = point  # coalesce equal-depth neighbours
            else:
                segments.append([prev_point, point, depth])
        depth += delta
        prev_point = point


class GuestMemory:
    """One guest's RAM: run-length groups of page content.

    All pages are allocated up front (KVM "obtains most of the requested
    memory for a VM at VM initialization", §5.2); what changes over the
    guest's lifetime is the *content* of those pages as the OS boots and
    applications dirty them.  ``total_pages`` is therefore an invariant
    fixed at allocation, and every operation costs O(content groups).
    """

    def __init__(self, owner_id: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise MemoryError_(f"guest memory must be positive, got {size_bytes}")
        self.owner_id = owner_id
        self._total_pages = bytes_to_pages(size_bytes)
        self._zero_pages = self._total_pages
        # image_id -> sorted non-overlapping [block_lo, block_hi, multiplicity]
        self._image_runs: Dict[str, List[List[int]]] = {}
        self._image_pages = 0
        # sorted non-overlapping [serial_lo, serial_hi) runs
        self._unique_runs: List[List[int]] = []
        self._unique_pages = 0
        self._unique_serial = 0
        self._erased = False
        #: Monotonic mutation counter; consumers (KSM) cache against it.
        self.dirty_epoch = 0
        #: Content runs are shared with a template (or clone) and must be
        #: copied before the first in-place mutation.
        self._cow_shared = False
        self._dirty_listeners: List = []

    # -- dirty listeners ---------------------------------------------------

    def add_dirty_listener(self, callback) -> None:
        """Call ``callback()`` after every mutation (epoch bump)."""
        self._dirty_listeners.append(callback)

    def remove_dirty_listener(self, callback) -> None:
        if callback in self._dirty_listeners:
            self._dirty_listeners.remove(callback)

    def _bump_epoch(self) -> None:
        self.dirty_epoch += 1
        for callback in self._dirty_listeners:
            callback()

    # -- introspection -----------------------------------------------------

    @property
    def total_pages(self) -> int:
        return self._total_pages

    @property
    def zero_pages(self) -> int:
        return self._zero_pages

    @property
    def erased(self) -> bool:
        return self._erased

    def page_groups(self) -> Iterator[Tuple[ContentTag, int]]:
        """Yield ``(tag, page_count)`` per content group (run-length form).

        For ``("image", id, lo, hi)`` groups the count is
        ``(hi - lo) * multiplicity``; a multiplicity above one means the
        guest mapped the same blocks more than once.
        """
        if self._zero_pages:
            yield ZERO_TAG, self._zero_pages
        for image_id in self._image_runs:
            for lo, hi, mult in self._image_runs[image_id]:
                yield image_range_tag(image_id, lo, hi), (hi - lo) * mult
        for lo, hi in self._unique_runs:
            yield unique_range_tag(self.owner_id, lo, hi), hi - lo

    def image_segments(self) -> Iterator[Tuple[str, int, int, int]]:
        """Yield ``(image_id, block_lo, block_hi, multiplicity)`` runs."""
        for image_id in self._image_runs:
            for lo, hi, mult in self._image_runs[image_id]:
                yield image_id, lo, hi, mult

    @property
    def clean_bytes(self) -> int:
        """Bytes not yet privately dirtied (available to :meth:`dirty`)."""
        return pages_to_bytes(self._zero_pages + self._image_pages)

    def stats(self) -> MemoryStats:
        return MemoryStats(
            total_pages=self._total_pages,
            zero_pages=self._zero_pages,
            image_pages=self._image_pages,
            unique_pages=self._unique_pages,
        )

    # -- copy-on-write cloning ------------------------------------------------

    def can_adopt(self, template: "GuestMemory") -> bool:
        """True if this pristine guest can flash-adopt ``template``'s runs."""
        return (
            not self._erased
            and self.dirty_epoch == 0
            and self._zero_pages == self._total_pages
            and self._total_pages == template._total_pages
        )

    def adopt_template(self, template: "GuestMemory") -> None:
        """Take over a booted template's content runs, copy-on-write.

        The run-length structures are shared by *reference*; both sides are
        flagged so the first in-place mutation on either privatizes its
        copy first.  Accounting (zero/image/unique counts) is copied, so
        stats, page groups, and KSM merge candidates are indistinguishable
        from a cold boot that replayed the template's map/dirty sequence.
        """
        if not self.can_adopt(template):
            raise MemoryError_(
                f"guest {self.owner_id}: only a pristine same-size guest "
                f"can adopt a template"
            )
        self._image_runs = template._image_runs
        self._unique_runs = template._unique_runs
        template._cow_shared = True
        self._cow_shared = True
        self._zero_pages = template._zero_pages
        self._image_pages = template._image_pages
        self._unique_pages = template._unique_pages
        self._unique_serial = template._unique_serial
        self.dirty_epoch = template.dirty_epoch
        for callback in self._dirty_listeners:
            callback()

    def clone(self, owner_id: str) -> "GuestMemory":
        """A new guest sharing this guest's content runs copy-on-write."""
        twin = GuestMemory(owner_id, pages_to_bytes(self._total_pages))
        twin.adopt_template(self)
        return twin

    def _ensure_private(self) -> None:
        """Deep-copy shared run structures before an in-place mutation."""
        if not self._cow_shared:
            return
        self._image_runs = {
            image_id: [run[:] for run in runs]
            for image_id, runs in self._image_runs.items()
        }
        self._unique_runs = [run[:] for run in self._unique_runs]
        self._cow_shared = False

    # -- mutation ------------------------------------------------------------

    def _take_pages(self, count: int) -> None:
        """Consume ``count`` pages, preferring zero pages, then image pages.

        Image pages are repurposed in (image_id, block) order, exactly as
        the per-block multiset implementation did.  Unlike that
        implementation, an impossible request mutates nothing (the multiset
        version dropped the pages it had already consumed before raising).
        """
        available = self._zero_pages + self._image_pages
        if count > available:
            raise MemoryError_(
                f"guest {self.owner_id}: cannot repurpose {count} pages "
                f"({count - available} short; all pages privately dirtied)"
            )
        remaining = count
        take = min(self._zero_pages, remaining)
        self._zero_pages -= take
        remaining -= take
        if remaining:
            for image_id in sorted(self._image_runs):
                segments = self._image_runs[image_id]
                while remaining and segments:
                    lo, hi, mult = segments[0]
                    whole_blocks = min(remaining // mult, hi - lo)
                    if whole_blocks:
                        lo += whole_blocks
                        consumed = whole_blocks * mult
                        remaining -= consumed
                        self._image_pages -= consumed
                    if lo == hi:
                        segments.pop(0)
                        continue
                    segments[0][0] = lo
                    if remaining and remaining < mult:
                        # Partially repurpose one block: shed `remaining` of
                        # its `mult` copies, keeping the rest in place.
                        self._image_pages -= remaining
                        if hi - lo == 1:
                            segments[0][2] = mult - remaining
                        else:
                            segments[0] = [lo, lo + 1, mult - remaining]
                            segments.insert(1, [lo + 1, hi, mult])
                        remaining = 0
                    break
                if not segments:
                    del self._image_runs[image_id]
                if not remaining:
                    break

    def map_image(self, image_id: str, size_bytes: int, first_block: int = 0) -> None:
        """Fill pages with shared disk-image content (page-cache of the base OS)."""
        pages = bytes_to_pages(size_bytes)
        if pages:
            self._ensure_private()
        self._take_pages(pages)
        if not pages:
            return
        runs = self._image_runs.setdefault(image_id, [])
        last = runs[-1] if runs else None
        if last is not None and last[1] == first_block and last[2] == 1:
            last[1] = first_block + pages  # common case: append-contiguous
        elif last is not None and first_block < last[1]:
            _add_image_run(runs, first_block, first_block + pages)
        else:
            runs.append([first_block, first_block + pages, 1])
        self._image_pages += pages
        self._bump_epoch()

    def dirty(self, size_bytes: int) -> None:
        """Dirty pages with private content (writes by the guest workload)."""
        pages = bytes_to_pages(size_bytes)
        if pages:
            self._ensure_private()
        self._take_pages(pages)
        if not pages:
            return
        lo = self._unique_serial
        self._unique_serial += pages
        if self._unique_runs and self._unique_runs[-1][1] == lo:
            self._unique_runs[-1][1] = lo + pages
        else:
            self._unique_runs.append([lo, lo + pages])
        self._unique_pages += pages
        self._bump_epoch()

    def dirty_pages(self, pages: int) -> None:
        self.dirty(pages_to_bytes(pages))

    def secure_erase(self) -> int:
        """Zero every page (the §3.4 amnesia step).  Returns pages wiped."""
        wiped = self._total_pages
        self._zero_pages = wiped
        self._image_runs = {}
        self._image_pages = 0
        self._unique_runs = []
        self._unique_pages = 0
        self._erased = True
        self._cow_shared = False
        self._bump_epoch()
        return wiped
