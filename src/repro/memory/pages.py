"""Page-granular guest memory modelled as content groups."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from repro.errors import MemoryError_

PAGE_SIZE = 4096  # bytes, matching x86 small pages


def bytes_to_pages(size_bytes: int) -> int:
    """Round ``size_bytes`` up to whole pages."""
    if size_bytes < 0:
        raise MemoryError_(f"negative size: {size_bytes}")
    return (size_bytes + PAGE_SIZE - 1) // PAGE_SIZE


def pages_to_bytes(pages: int) -> int:
    return pages * PAGE_SIZE


# A content tag identifies *what* is on a page.  Pages in different guests
# with equal tags hold identical bytes and are KSM merge candidates.
#   ("zero",)                    — zero-filled page
#   ("image", image_id, block)   — page backed by a shared disk image block
#   ("unique", owner_id, serial) — privately dirtied page, never shareable
ContentTag = Tuple


ZERO_TAG: ContentTag = ("zero",)


def image_tag(image_id: str, block: int) -> ContentTag:
    return ("image", image_id, block)


def unique_tag(owner_id: str, serial: int) -> ContentTag:
    return ("unique", owner_id, serial)


def is_mergeable(tag: ContentTag) -> bool:
    """Unique (privately dirtied) pages never merge; shared content does."""
    return tag[0] != "unique"


@dataclass(frozen=True)
class MemoryStats:
    """Point-in-time accounting for one guest's memory."""

    total_pages: int
    zero_pages: int
    image_pages: int
    unique_pages: int

    @property
    def total_bytes(self) -> int:
        return pages_to_bytes(self.total_pages)


class GuestMemory:
    """One guest's RAM: a multiset of page content tags.

    All pages are allocated up front (KVM "obtains most of the requested
    memory for a VM at VM initialization", §5.2); what changes over the
    guest's lifetime is the *content* of those pages as the OS boots and
    applications dirty them.
    """

    def __init__(self, owner_id: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise MemoryError_(f"guest memory must be positive, got {size_bytes}")
        self.owner_id = owner_id
        self._pages: Dict[ContentTag, int] = {ZERO_TAG: bytes_to_pages(size_bytes)}
        self._unique_serial = 0
        self._erased = False

    # -- introspection -----------------------------------------------------

    @property
    def total_pages(self) -> int:
        return sum(self._pages.values())

    @property
    def erased(self) -> bool:
        return self._erased

    def page_groups(self) -> Iterator[Tuple[ContentTag, int]]:
        return iter(self._pages.items())

    @property
    def clean_bytes(self) -> int:
        """Bytes not yet privately dirtied (available to :meth:`dirty`)."""
        clean = sum(n for tag, n in self._pages.items() if tag[0] != "unique")
        return pages_to_bytes(clean)

    def stats(self) -> MemoryStats:
        zero = self._pages.get(ZERO_TAG, 0)
        image = sum(n for tag, n in self._pages.items() if tag[0] == "image")
        unique = sum(n for tag, n in self._pages.items() if tag[0] == "unique")
        return MemoryStats(
            total_pages=self.total_pages,
            zero_pages=zero,
            image_pages=image,
            unique_pages=unique,
        )

    # -- mutation ------------------------------------------------------------

    def _take_pages(self, count: int) -> None:
        """Consume ``count`` pages, preferring zero pages, then image pages."""
        remaining = count
        for tag in sorted(self._pages, key=lambda t: (t[0] != "zero", t)):
            if remaining == 0:
                break
            if tag[0] == "unique":
                continue
            take = min(self._pages[tag], remaining)
            self._pages[tag] -= take
            if self._pages[tag] == 0:
                del self._pages[tag]
            remaining -= take
        if remaining:
            raise MemoryError_(
                f"guest {self.owner_id}: cannot repurpose {count} pages "
                f"({remaining} short; all pages privately dirtied)"
            )

    def map_image(self, image_id: str, size_bytes: int, first_block: int = 0) -> None:
        """Fill pages with shared disk-image content (page-cache of the base OS)."""
        pages = bytes_to_pages(size_bytes)
        self._take_pages(pages)
        for block in range(first_block, first_block + pages):
            tag = image_tag(image_id, block)
            self._pages[tag] = self._pages.get(tag, 0) + 1

    def dirty(self, size_bytes: int) -> None:
        """Dirty pages with private content (writes by the guest workload)."""
        pages = bytes_to_pages(size_bytes)
        self._take_pages(pages)
        for _ in range(pages):
            tag = unique_tag(self.owner_id, self._unique_serial)
            self._unique_serial += 1
            self._pages[tag] = 1

    def dirty_pages(self, pages: int) -> None:
        self.dirty(pages_to_bytes(pages))

    def secure_erase(self) -> int:
        """Zero every page (the §3.4 amnesia step).  Returns pages wiped."""
        wiped = self.total_pages
        self._pages = {ZERO_TAG: wiped}
        self._erased = True
        return wiped
