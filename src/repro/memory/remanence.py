"""Host memory remanence after VM shutdown (§3.4's Dunn discussion).

"Nymix and all other existing production solutions retain traces of that
state until reboot; however, because the hypervisor cannot be accessed
without live confiscation, such state is likely to be inaccessible."

Nymix securely erases the *guest-visible* pages at nym teardown, but
host-side copies — kernel page-cache lines, DMA bounce buffers, QEMU heap
fragments — survive in free host RAM until reboot or until Dunn-style
ephemeral-channel scrubbing [18] reclaims them.  This module accounts for
those traces and models the two adversaries: one with live physical
access (cold-boot / DMA) and one who only gets the machine after a
power-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import MemoryError_
from repro.obs import NULL_OBS


class AdversaryAccess(enum.Enum):
    """When the adversary gets their hands on the machine."""

    LIVE = "live"  # running system confiscated: can image host RAM
    AFTER_SHUTDOWN = "after-shutdown"  # powered off: RAM contents are gone


@dataclass(frozen=True)
class ResidualTrace:
    """One batch of host-side bytes still attributable to a dead nym."""

    nym_name: str
    kind: str  # "page-cache", "dma-buffer", "vmm-heap"
    residual_bytes: int


class RemanenceTracker:
    """Accounts for host-side traces of destroyed nyms until reboot.

    ``residual_fraction`` is the share of a guest's footprint that leaves
    host-side copies despite guest-page erasure; ``ephemeral_channels``
    models Dunn's mitigation, which scrubs DMA and VMM copies as they are
    released (at some compute/hardware cost, which is why the paper
    defers it).
    """

    _KIND_SHARES = {"page-cache": 0.55, "dma-buffer": 0.15, "vmm-heap": 0.30}

    def __init__(
        self,
        residual_fraction: float = 0.02,
        ephemeral_channels: bool = False,
        obs=NULL_OBS,
    ) -> None:
        if not 0 <= residual_fraction <= 1:
            raise MemoryError_(f"residual fraction out of range: {residual_fraction}")
        self.residual_fraction = residual_fraction
        self.ephemeral_channels = ephemeral_channels
        self._traces: List[ResidualTrace] = []
        self.reboots = 0
        self.obs = obs
        self._obs_residual = obs.metrics.gauge("mem.remanence.residual_bytes")

    # -- lifecycle hooks ----------------------------------------------------------

    def record_nym_teardown(self, nym_name: str, guest_footprint_bytes: int) -> int:
        """Called when a nym is destroyed.  Returns residual bytes left."""
        if guest_footprint_bytes < 0:
            raise MemoryError_(f"negative footprint: {guest_footprint_bytes}")
        residual = int(guest_footprint_bytes * self.residual_fraction)
        if self.ephemeral_channels:
            # Dunn-style scrubbing eliminates DMA and VMM copies; only a
            # sliver of page-cache metadata survives.
            residual = int(residual * 0.02)
            if residual:
                self._traces.append(ResidualTrace(nym_name, "page-cache", residual))
        else:
            for kind, share in self._KIND_SHARES.items():
                portion = int(residual * share)
                if portion:
                    self._traces.append(ResidualTrace(nym_name, kind, portion))
        self._obs_residual.set(self.total_residual_bytes)
        self.obs.event(
            "remanence.teardown",
            nym=nym_name,
            residual_bytes=residual,
            scrubbed=self.ephemeral_channels,
        )
        return residual

    def reboot(self) -> int:
        """Power cycle: volatile RAM loses everything.  Returns bytes cleared."""
        cleared = self.total_residual_bytes
        self._traces.clear()
        self.reboots += 1
        self._obs_residual.set(0)
        self.obs.metrics.counter("mem.remanence.reboots").inc()
        self.obs.event("remanence.reboot", cleared_bytes=cleared)
        return cleared

    # -- the adversary's view ------------------------------------------------------

    @property
    def total_residual_bytes(self) -> int:
        return sum(trace.residual_bytes for trace in self._traces)

    def traces_for(self, nym_name: str) -> List[ResidualTrace]:
        return [t for t in self._traces if t.nym_name == nym_name]

    def recoverable_bytes(self, access: AdversaryAccess) -> int:
        """How much dead-nym data an adversary can image."""
        if access is AdversaryAccess.LIVE:
            return self.total_residual_bytes
        return 0  # power-off loses volatile RAM

    def evidence_of_nym(self, nym_name: str, access: AdversaryAccess) -> bool:
        """Could forensics prove this nym existed?"""
        if access is AdversaryAccess.AFTER_SHUTDOWN:
            return False
        return bool(self.traces_for(nym_name))

    def summary(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for trace in self._traces:
            by_kind[trace.kind] = by_kind.get(trace.kind, 0) + trace.residual_bytes
        return by_kind
