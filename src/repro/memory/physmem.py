"""Host physical memory: admission control and usage accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import OutOfMemoryError
from repro.memory.ksm import Ksm
from repro.memory.pages import GuestMemory, bytes_to_pages, pages_to_bytes

MIB = 1024 * 1024
GIB = 1024 * MIB


@dataclass(frozen=True)
class HostMemoryStats:
    """Host-wide memory snapshot, after KSM savings."""

    total_bytes: int
    base_used_bytes: int  # host OS + hypervisor footprint
    guest_allocated_bytes: int  # sum of guest RAM, pre-KSM
    ksm_saved_bytes: int

    @property
    def used_bytes(self) -> int:
        return self.base_used_bytes + self.guest_allocated_bytes - self.ksm_saved_bytes

    @property
    def free_bytes(self) -> int:
        return self.total_bytes - self.used_bytes


class HostMemory:
    """The machine's RAM: guests are admitted against it, KSM reclaims from it.

    ``base_used_bytes`` covers the hypervisor OS itself (the paper's test
    machine boots Ubuntu from USB with all writes in RAM).
    """

    def __init__(
        self,
        total_bytes: int = 16 * GIB,
        base_used_bytes: int = 1 * GIB,
        ksm: Ksm = None,
    ) -> None:
        if total_bytes <= 0:
            raise OutOfMemoryError(f"host memory must be positive, got {total_bytes}")
        if base_used_bytes >= total_bytes:
            raise OutOfMemoryError("host base usage exceeds physical memory")
        self.total_bytes = total_bytes
        self.base_used_bytes = base_used_bytes
        self.ksm = ksm if ksm is not None else Ksm()
        self._guests: Dict[str, GuestMemory] = {}
        self._allocated_pages = 0  # maintained by allocate/release

    # -- admission ------------------------------------------------------------

    def allocate_guest(self, owner_id: str, size_bytes: int) -> GuestMemory:
        """Admit a new guest of ``size_bytes`` RAM or raise OutOfMemoryError."""
        if owner_id in self._guests:
            raise OutOfMemoryError(f"guest {owner_id!r} already has memory allocated")
        projected = self._used_bytes_now() + pages_to_bytes(bytes_to_pages(size_bytes))
        if projected > self.total_bytes:
            raise OutOfMemoryError(
                f"admitting {owner_id!r} ({size_bytes} B) would need {projected} B "
                f"of {self.total_bytes} B physical"
            )
        guest = GuestMemory(owner_id, size_bytes)
        self._guests[owner_id] = guest
        self._allocated_pages += guest.total_pages
        self.ksm.register(guest)
        return guest

    def release_guest(self, owner_id: str, secure: bool = True) -> None:
        """Tear down a guest's memory, securely erasing it first by default."""
        guest = self._guests.pop(owner_id, None)
        if guest is None:
            return
        self._allocated_pages -= guest.total_pages
        if secure:
            guest.secure_erase()
        self.ksm.unregister(guest)

    def guest(self, owner_id: str) -> GuestMemory:
        return self._guests[owner_id]

    def guests(self) -> List[GuestMemory]:
        return list(self._guests.values())

    # -- accounting ------------------------------------------------------------

    def _used_bytes_now(self) -> int:
        """Same arithmetic as ``stats().used_bytes`` without building the
        snapshot dataclass (admission runs this on every guest launch)."""
        return (
            self.base_used_bytes
            + pages_to_bytes(self._allocated_pages)
            - self.ksm.stats().bytes_saved
        )

    def stats(self) -> HostMemoryStats:
        allocated = pages_to_bytes(self._allocated_pages)
        return HostMemoryStats(
            total_bytes=self.total_bytes,
            base_used_bytes=self.base_used_bytes,
            guest_allocated_bytes=allocated,
            ksm_saved_bytes=self.ksm.stats().bytes_saved,
        )
