"""Host physical memory, guest page accounting, KSM, secure erase.

The evaluation in the paper (Figure 3) is about RAM: each nymbox allocates
its full guest RAM at VM initialization, kernel samepage merging (KSM)
claws back duplicate pages across VMs, and tearing a nym down securely
erases its memory (the amnesia guarantee of §3.4).

Guest memory is modelled at page granularity but stored as *content
groups* (tag → page count): two pages are identical exactly when they
carry the same content tag, which is what KSM's content scanner would
discover by hashing real pages.  This keeps multi-gigabyte configurations
cheap to simulate while preserving exact sharing semantics.
"""

from repro.memory.pages import (
    PAGE_SIZE,
    ContentTag,
    GuestMemory,
    MemoryStats,
    bytes_to_pages,
    pages_to_bytes,
)
from repro.memory.physmem import HostMemory
from repro.memory.ksm import Ksm, KsmStats

__all__ = [
    "PAGE_SIZE",
    "ContentTag",
    "GuestMemory",
    "MemoryStats",
    "HostMemory",
    "Ksm",
    "KsmStats",
    "bytes_to_pages",
    "pages_to_bytes",
]
