"""Kernel samepage merging across registered guests.

KSM scans guest pages, hashing their contents and collapsing identical
pages into a single copy-on-write physical page.  Our guests expose page
*content groups*, so a scan is exact: every group tag appearing in more
than one place collapses to a single physical page.

The scanner is rate-limited like the kernel's (``pages_per_scan``), so
sharing ramps up over time instead of appearing instantaneously — this is
why Figure 3 shows shared pages growing between the "before" and "after"
measurements of each nym.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.memory.pages import ContentTag, GuestMemory, is_mergeable, pages_to_bytes
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class KsmStats:
    """Mirror of the kernel's /sys/kernel/mm/ksm counters (the ones we need)."""

    pages_shared: int  # physical pages backing merged content
    pages_sharing: int  # guest pages mapped onto a shared physical page
    pages_saved: int  # pages_sharing - pages_shared

    @property
    def bytes_saved(self) -> int:
        return pages_to_bytes(self.pages_saved)


class Ksm:
    """Samepage-merging scanner over a set of guests.

    ``coverage`` models how much of guest memory the scanner has visited:
    each :meth:`scan` pass advances coverage toward 1.0, and only covered
    duplicate pages count as merged.  A full scan (``run_to_completion``)
    merges everything mergeable.
    """

    def __init__(
        self,
        enabled: bool = True,
        pages_per_scan: int = 25_000,
        merge_zero_pages: bool = False,
        obs=NULL_OBS,
    ) -> None:
        self.enabled = enabled
        self.pages_per_scan = pages_per_scan
        # Real KSM deduplicates only madvise(MERGEABLE) regions, and guest
        # free-page churn keeps zero pages out of stable trees in practice —
        # the paper measured only ~5% total savings.  Zero-page merging is
        # left switchable for the ablation benchmark.
        self.merge_zero_pages = merge_zero_pages
        self._guests: List[GuestMemory] = []
        self._scanned_pages = 0
        self.obs = obs
        self._scan_passes = obs.metrics.counter("ksm.scan_passes")
        self._pages_sharing = obs.metrics.gauge("ksm.pages_sharing")
        self._pages_merged = obs.metrics.gauge("ksm.pages_merged")
        self._coverage_resets = obs.metrics.counter("ksm.coverage_resets")

    def register(self, guest: GuestMemory) -> None:
        if guest not in self._guests:
            self._guests.append(guest)

    def unregister(self, guest: GuestMemory) -> None:
        if guest in self._guests:
            self._guests.remove(guest)

    # -- scanning ------------------------------------------------------------

    @property
    def total_guest_pages(self) -> int:
        return sum(guest.total_pages for guest in self._guests)

    @property
    def coverage(self) -> float:
        total = self.total_guest_pages
        if total == 0:
            return 1.0
        return min(1.0, self._scanned_pages / total)

    def scan(self, passes: int = 1) -> KsmStats:
        """Advance the scanner by ``passes`` rate-limited passes."""
        if self.enabled:
            self._scanned_pages += self.pages_per_scan * passes
            self._scan_passes.inc(passes)
        return self._published_stats()

    def run_to_completion(self) -> KsmStats:
        """Let the scanner finish covering all guest memory."""
        if self.enabled:
            self._scanned_pages = max(self._scanned_pages, self.total_guest_pages)
            self._scan_passes.inc()
        return self._published_stats()

    def reset_coverage(self) -> None:
        """Forget scan progress (e.g. after large memory churn).

        This is the simulated analogue of mass COW breaks: merged pages
        diverge again and the scanner must re-earn its coverage.
        """
        self._scanned_pages = 0
        self._coverage_resets.inc()
        self.obs.event("ksm.coverage_reset", guests=len(self._guests))

    def _published_stats(self) -> KsmStats:
        """Compute stats and mirror them into the metrics gauges."""
        stats = self.stats()
        self._pages_sharing.set(stats.pages_sharing)
        self._pages_merged.set(stats.pages_saved)
        return stats

    # -- accounting ------------------------------------------------------------

    def _merge_candidates(self) -> Dict[ContentTag, int]:
        """Mergeable content tags mapped to their total page counts (>= 2)."""
        counts: Dict[ContentTag, int] = {}
        for guest in self._guests:
            for tag, count in guest.page_groups():
                if not is_mergeable(tag):
                    continue
                if tag[0] == "zero" and not self.merge_zero_pages:
                    continue
                counts[tag] = counts.get(tag, 0) + count
        return {tag: count for tag, count in counts.items() if count >= 2}

    def stats(self) -> KsmStats:
        if not self.enabled:
            return KsmStats(pages_shared=0, pages_sharing=0, pages_saved=0)
        candidates = self._merge_candidates()
        shared = len(candidates)
        sharing = sum(candidates.values())
        fraction = self.coverage
        # Rate limiting: only the covered fraction of duplicates is merged yet.
        shared_now = int(shared * fraction)
        sharing_now = int(sharing * fraction)
        return KsmStats(
            pages_shared=shared_now,
            pages_sharing=sharing_now,
            pages_saved=max(0, sharing_now - shared_now),
        )
