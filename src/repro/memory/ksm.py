"""Kernel samepage merging across registered guests.

KSM scans guest pages, hashing their contents and collapsing identical
pages into a single copy-on-write physical page.  Our guests expose page
*content groups*, so a scan is exact: every page content appearing in more
than one place collapses to a single physical page.

The scanner is rate-limited like the kernel's (``pages_per_scan``), so
sharing ramps up over time instead of appearing instantaneously — this is
why Figure 3 shows shared pages growing between the "before" and "after"
measurements of each nym.

Accounting is incremental: a cross-guest candidate index is kept and
revalidated against each guest's ``dirty_epoch``, so the ``stats()`` a
ksmd wakeup publishes is O(1) amortized — the index is rebuilt (O(content
groups), not O(pages)) only when some guest's memory actually changed or
the guest set itself did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.memory.pages import GuestMemory, pages_to_bytes
from repro.obs import NULL_OBS

try:  # numpy accelerates the duplicate sweep; the scalar path is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the environment
    _np = None

#: Below this many (lo, hi, mult) runs the scalar sweep wins (no array setup).
_VECTOR_SWEEP_THRESHOLD = 24


@dataclass(frozen=True)
class KsmStats:
    """Mirror of the kernel's /sys/kernel/mm/ksm counters (the ones we need)."""

    pages_shared: int  # physical pages backing merged content
    pages_sharing: int  # guest pages mapped onto a shared physical page
    pages_saved: int  # pages_sharing - pages_shared

    @property
    def bytes_saved(self) -> int:
        return pages_to_bytes(self.pages_saved)


#: Shared "nothing merged" result: the gated fast paths below return it
#: on every pre-scan stats() call, so it must never be mutated.
_ZERO_STATS = KsmStats(pages_shared=0, pages_sharing=0, pages_saved=0)


def _sweep_duplicates(runs: Iterable[Tuple[int, int, int]]) -> Tuple[int, int]:
    """Count duplicated blocks across ``(lo, hi, multiplicity)`` runs.

    Returns ``(shared, sharing)``: for every block covered by total
    multiplicity ``d >= 2`` across all runs, one physical page backs ``d``
    guest pages — identical to counting per-block content tags.
    """
    events: List[Tuple[int, int]] = []
    for lo, hi, mult in runs:
        events.append((lo, mult))
        events.append((hi, -mult))
    events.sort()
    shared = 0
    sharing = 0
    depth = 0
    prev_point = None
    for point, delta in events:
        if prev_point is not None and depth >= 2 and point > prev_point:
            width = point - prev_point
            shared += width
            sharing += depth * width
        depth += delta
        prev_point = point
    return shared, sharing


def _sweep_duplicates_grouped(
    group_ids: List[int], los: List[int], his: List[int], mults: List[int]
) -> Tuple[int, int]:
    """Vectorized :func:`_sweep_duplicates` over *all* content groups at once.

    Each run ``i`` belongs to group ``group_ids[i]`` (one group per image
    id); runs of different groups never merge.  The event sweep runs as
    one lexsort + cumsum over the concatenated per-group event lists: a
    group's deltas sum to zero, so depth returns to 0 at every group
    boundary and the boundary mask only guards against negative widths.
    Exact-equivalent to per-group :func:`_sweep_duplicates` (pinned by
    tests/test_memory_equivalence.py).
    """
    if _np is None or len(los) < _VECTOR_SWEEP_THRESHOLD:
        per_group: Dict[int, List[Tuple[int, int, int]]] = {}
        for gid, lo, hi, mult in zip(group_ids, los, his, mults):
            per_group.setdefault(gid, []).append((lo, hi, mult))
        shared = 0
        sharing = 0
        for runs in per_group.values():
            run_shared, run_sharing = _sweep_duplicates(runs)
            shared += run_shared
            sharing += run_sharing
        return shared, sharing
    n = len(los)
    group = _np.fromiter(group_ids, dtype=_np.int64, count=n)
    lo_arr = _np.fromiter(los, dtype=_np.int64, count=n)
    hi_arr = _np.fromiter(his, dtype=_np.int64, count=n)
    mult_arr = _np.fromiter(mults, dtype=_np.int64, count=n)
    points = _np.concatenate([lo_arr, hi_arr])
    deltas = _np.concatenate([mult_arr, -mult_arr])
    groups2 = _np.concatenate([group, group])
    order = _np.lexsort((points, groups2))
    points = points[order]
    groups2 = groups2[order]
    depth = _np.cumsum(deltas[order])[:-1]
    widths = points[1:] - points[:-1]
    covered = (depth >= 2) & (groups2[1:] == groups2[:-1])
    shared = int(widths[covered].sum())
    sharing = int((widths[covered] * depth[covered]).sum())
    return shared, sharing


class Ksm:
    """Samepage-merging scanner over a set of guests.

    ``coverage`` models how much of guest memory the scanner has visited:
    each :meth:`scan` pass advances coverage toward 1.0, and only covered
    duplicate pages count as merged.  A full scan (``run_to_completion``)
    merges everything mergeable.
    """

    def __init__(
        self,
        enabled: bool = True,
        pages_per_scan: int = 25_000,
        merge_zero_pages: bool = False,
        obs=NULL_OBS,
    ) -> None:
        self.enabled = enabled
        self.pages_per_scan = pages_per_scan
        # Real KSM deduplicates only madvise(MERGEABLE) regions, and guest
        # free-page churn keeps zero pages out of stable trees in practice —
        # the paper measured only ~5% total savings.  Zero-page merging is
        # left switchable for the ablation benchmark.
        self.merge_zero_pages = merge_zero_pages
        self._guests: List[GuestMemory] = []
        self._total_pages = 0
        self._scanned_pages = 0
        # Incremental candidate index.  Each registered guest gets a dirty
        # listener that flips the stale flag, so checking freshness is O(1)
        # instead of an epoch walk over every guest; the epochs are still
        # recorded at rebuild time for introspection and the perfbench
        # seed-mode baseline.
        self._index_stale = True
        self._guest_epochs: Dict[int, int] = {}
        self._mergeable_shared = 0
        self._mergeable_sharing = 0
        #: Bumped on every change that can alter ``stats()`` output
        #: (guest set, dirty memory, scan coverage).  Snapshot caches key
        #: on it — see ``Hypervisor.accounting_token``.
        self.version = 0
        # stats() memo: (version, coverage-gate flag) -> KsmStats.  The
        # version covers every mutation, so a hit returns the previous
        # (frozen) stats object without touching the index.
        self._stats_cache: Optional[Tuple[int, bool, "KsmStats"]] = None
        self.obs = obs
        self._scan_passes = obs.metrics.counter("ksm.scan_passes")
        self._pages_sharing = obs.metrics.gauge("ksm.pages_sharing")
        self._pages_merged = obs.metrics.gauge("ksm.pages_merged")
        self._coverage_resets = obs.metrics.counter("ksm.coverage_resets")

    def register(self, guest: GuestMemory) -> None:
        if guest not in self._guests:
            self._guests.append(guest)
            self._total_pages += guest.total_pages
            guest.add_dirty_listener(self._mark_index_stale)
            self._index_stale = True
            self.version += 1

    def unregister(self, guest: GuestMemory) -> None:
        if guest in self._guests:
            self._guests.remove(guest)
            self._total_pages -= guest.total_pages
            guest.remove_dirty_listener(self._mark_index_stale)
            self._guest_epochs.pop(id(guest), None)
            self._index_stale = True
            self.version += 1

    def _mark_index_stale(self) -> None:
        self._index_stale = True
        self.version += 1

    # -- scanning ------------------------------------------------------------

    @property
    def total_guest_pages(self) -> int:
        return self._total_pages

    @property
    def coverage(self) -> float:
        total = self.total_guest_pages
        if total == 0:
            return 1.0
        return min(1.0, self._scanned_pages / total)

    def scan(self, passes: int = 1) -> KsmStats:
        """Advance the scanner by ``passes`` rate-limited passes.

        Scan progress is clamped to the registered guest footprint, so a
        long-idle scanner holds no unbounded surplus: memory added later
        must be covered by fresh passes, exactly like ksmd revisiting new
        madvised regions.
        """
        if self.enabled:
            scanned = min(
                self._scanned_pages + self.pages_per_scan * passes,
                self.total_guest_pages,
            )
            if scanned != self._scanned_pages:
                self._scanned_pages = scanned
                self.version += 1
            self._scan_passes.inc(passes)
        return self._published_stats()

    def run_to_completion(self) -> KsmStats:
        """Let the scanner finish covering all guest memory."""
        if self.enabled:
            total = self.total_guest_pages
            if self._scanned_pages < total:
                # Only an actual catch-up scan counts as a pass; calling
                # this with coverage already complete is a no-op.
                self._scanned_pages = total
                self.version += 1
                self._scan_passes.inc()
        return self._published_stats()

    def reset_coverage(self) -> None:
        """Forget scan progress (e.g. after large memory churn).

        This is the simulated analogue of mass COW breaks: merged pages
        diverge again and the scanner must re-earn its coverage.
        """
        self._scanned_pages = 0
        self.version += 1
        self._coverage_resets.inc()
        self.obs.event("ksm.coverage_reset", guests=len(self._guests))

    def _published_stats(self) -> KsmStats:
        """Compute stats and mirror them into the metrics gauges."""
        stats = self.stats()
        self._pages_sharing.set(stats.pages_sharing)
        self._pages_merged.set(stats.pages_saved)
        return stats

    # -- accounting ------------------------------------------------------------

    def _index_current(self) -> bool:
        # Dirty listeners flip ``_index_stale`` the moment any registered
        # guest mutates, so freshness is the flag alone — no epoch walk.
        return not self._index_stale

    def _rebuild_index(self) -> None:
        """Recompute the cross-guest merge candidates from content groups.

        O(total content groups) — run-length guest accounting keeps that a
        few dozen entries even for multi-GiB guest sets.
        """
        zero_total = 0
        image_index: Dict[str, int] = {}
        group_ids: List[int] = []
        los: List[int] = []
        his: List[int] = []
        mults: List[int] = []
        for guest in self._guests:
            zero_total += guest.zero_pages
            for image_id, lo, hi, mult in guest.image_segments():
                gid = image_index.setdefault(image_id, len(image_index))
                group_ids.append(gid)
                los.append(lo)
                his.append(hi)
                mults.append(mult)
        shared, sharing = _sweep_duplicates_grouped(group_ids, los, his, mults)
        if self.merge_zero_pages and zero_total >= 2:
            # All zero pages carry one content: a single physical page.
            shared += 1
            sharing += zero_total
        self._mergeable_shared = shared
        self._mergeable_sharing = sharing
        self._guest_epochs = {id(g): g.dirty_epoch for g in self._guests}
        self._index_stale = False

    #: Class-level gate for the zero-coverage fast path below; the
    #: perfbench seed modes flip it off so baselines keep the seed cost.
    _coverage_gate_enabled = True

    #: Class-level gate for the version-keyed stats memo; the perfbench
    #: seed modes flip it off so baselines recompute stats every call.
    _stats_cache_enabled = True

    def stats(self) -> KsmStats:
        gate = self._coverage_gate_enabled
        if not self._stats_cache_enabled:
            return self._compute_stats(gate)
        cached = self._stats_cache
        if cached is not None and cached[0] == self.version and cached[1] == gate:
            return cached[2]
        result = self._compute_stats(gate)
        self._stats_cache = (self.version, gate, result)
        return result

    def _compute_stats(self, gate: bool) -> KsmStats:
        if not self.enabled:
            return _ZERO_STATS
        if gate and self._scanned_pages == 0 and self._total_pages > 0:
            # Nothing scanned yet: the coverage fraction is exactly 0.0,
            # so both truncated counts are 0 whatever the index holds —
            # skip the rebuild (it happens lazily on the first scan).
            return _ZERO_STATS
        if not self._index_current():
            self._rebuild_index()
        shared = self._mergeable_shared
        sharing = self._mergeable_sharing
        fraction = self.coverage
        # Rate limiting: only the covered fraction of duplicates is merged yet.
        shared_now = int(shared * fraction)
        sharing_now = int(sharing * fraction)
        if sharing_now and not shared_now:
            # Truncation can report mapped-onto-shared pages with zero shared
            # pages backing them; any sharing implies at least one physical
            # page, so round the backing count up to keep the pair coherent.
            shared_now = 1
        return KsmStats(
            pages_shared=shared_now,
            pages_sharing=sharing_now,
            pages_saved=max(0, sharing_now - shared_now),
        )
