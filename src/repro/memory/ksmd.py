"""ksmd: the background samepage-merging daemon.

The kernel's ksmd wakes periodically, scans a batch of pages, and sleeps
again; sharing therefore ramps up over wall-clock time after new VMs
appear.  :class:`KsmDaemon` reproduces that by rescheduling itself on the
simulation timeline, so any code that sleeps the timeline (browsing,
downloads, boots) implicitly lets the scanner make progress — the reason
Figure 3's shared-page counts keep climbing between measurements.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.memory.ksm import Ksm
from repro.sim.clock import ScheduledEvent, Timeline


class KsmDaemon:
    """Periodic KSM scan passes driven by the simulated clock."""

    def __init__(
        self,
        timeline: Timeline,
        ksm: Ksm,
        interval_s: float = 2.0,
        passes_per_wake: int = 1,
    ) -> None:
        if interval_s <= 0:
            raise SimulationError(f"interval must be positive, got {interval_s}")
        if passes_per_wake < 1:
            raise SimulationError(f"passes must be >= 1, got {passes_per_wake}")
        self.timeline = timeline
        self.ksm = ksm
        self.interval_s = interval_s
        self.passes_per_wake = passes_per_wake
        self.wakeups = 0
        self._pending: Optional[ScheduledEvent] = None
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _schedule(self) -> None:
        self._pending = self.timeline.after(self.interval_s, self._wake)

    def _wake(self) -> None:
        if not self._running:
            return
        self.ksm.scan(passes=self.passes_per_wake)
        self.wakeups += 1
        self.timeline.obs.metrics.counter("ksm.daemon.wakeups").inc()
        self._schedule()
