"""The Chromium model: cache, cookies, history, credentials, fingerprint.

Everything the browser persists lands in the AnonVM's union file system —
so a nym snapshot automatically carries it, and discarding an ephemeral
nym automatically destroys it.  The cache is capped (83 MB, Chromium's
default noted in §5.3) with LRU eviction; cached content is mostly
incompressible (images, compressed transfers), which is why encrypted nym
snapshots in Figure 6 track cache growth nearly 1:1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NymixError
from repro.guest.websites import WEBSITE_CATALOG, Website
from repro.net.internet import HttpResponse
from repro.sim.rng import SeededRng
from repro.vmm.vm import VirtualMachine

MIB = 1024 * 1024

_CACHE_DIR = "/home/user/.cache/chromium/Cache"
_CONFIG_DIR = "/home/user/.config/chromium"
_HISTORY_FILE = f"{_CONFIG_DIR}/History"
_COOKIES_FILE = f"{_CONFIG_DIR}/Cookies"
_LOGIN_FILE = f"{_CONFIG_DIR}/Login Data"

_LOREM = (
    b"<html><head><title>cached document</title></head><body>"
    b"lorem ipsum dolor sit amet consectetur adipiscing elit " * 16
)


@dataclass(frozen=True)
class BrowserFingerprint:
    """The Panopticlick-visible surface; identical in every nymbox."""

    user_agent: str = "Mozilla/5.0 (X11; Linux x86_64) Chromium/34.0.1847.116"
    screen: Tuple[int, int] = (1024, 768)
    timezone: str = "UTC"
    language: str = "en-US"
    fonts: Tuple[str, ...] = ("DejaVu Sans", "DejaVu Serif", "DejaVu Sans Mono")
    plugins: Tuple[str, ...] = ()

    def as_tuple(self) -> Tuple:
        return (
            self.user_agent,
            self.screen,
            self.timezone,
            self.language,
            self.fonts,
            self.plugins,
        )


@dataclass(frozen=True)
class FetchOutcome:
    """What the network path (anonymizer) reports back for one request."""

    response: HttpResponse
    duration_s: float


@dataclass(frozen=True)
class PageLoad:
    """One completed page visit as the user experiences it."""

    hostname: str
    duration_s: float
    payload_bytes: int
    cached_bytes_written: int


@dataclass
class StoredCredential:
    hostname: str
    username: str
    password: str


class Browser:
    """A Chromium profile living inside one AnonVM.

    ``fetcher`` is the only way out: an object with
    ``fetch(hostname, client_token) -> FetchOutcome`` provided by the
    nymbox, which routes the request through the CommVM's anonymizer.
    """

    DEFAULT_CACHE_LIMIT = 83 * MIB  # Chromium's default, per §5.3

    def __init__(
        self,
        vm: VirtualMachine,
        fetcher,
        rng: SeededRng,
        profile_token: str,
        cache_limit_bytes: int = DEFAULT_CACHE_LIMIT,
    ) -> None:
        self.vm = vm
        self.fetcher = fetcher
        self.rng = rng
        self.profile_token = profile_token
        self.cache_limit_bytes = cache_limit_bytes
        self.fingerprint = BrowserFingerprint()
        self.history: List[str] = []
        self.cookies: Dict[str, int] = {}  # hostname -> cookie bytes
        self.credentials: Dict[str, StoredCredential] = {}
        self._cache_files: List[Tuple[str, int]] = []  # (path, size), LRU order
        self._cache_serial = 0
        self._restore_profile()

    # -- profile persistence in the union FS ----------------------------------

    def _restore_profile(self) -> None:
        """Rehydrate in-memory indexes from a restored file system."""
        fs = self.vm.fs
        if fs.exists(_HISTORY_FILE):
            self.history = fs.read(_HISTORY_FILE).decode().splitlines()
        if fs.exists(_COOKIES_FILE):
            for line in fs.read(_COOKIES_FILE).decode().splitlines():
                hostname, _, size = line.partition("\t")
                if size:
                    self.cookies[hostname] = int(size)
        if fs.exists(_LOGIN_FILE):
            for line in fs.read(_LOGIN_FILE).decode().splitlines():
                parts = line.split("\t")
                if len(parts) == 3:
                    self.credentials[parts[0]] = StoredCredential(*parts)
        prefix = _CACHE_DIR + "/"
        for path in fs.walk():
            if path.startswith(prefix):
                self._cache_files.append((path, len(fs.read(path))))
                self._cache_serial += 1

    def _write_history(self) -> None:
        self.vm.fs.write(_HISTORY_FILE, ("\n".join(self.history)).encode())

    def _write_cookies(self) -> None:
        lines = [f"{host}\t{size}" for host, size in sorted(self.cookies.items())]
        self.vm.fs.write(_COOKIES_FILE, ("\n".join(lines)).encode())

    def _write_credentials(self) -> None:
        lines = [
            f"{cred.hostname}\t{cred.username}\t{cred.password}"
            for cred in self.credentials.values()
        ]
        self.vm.fs.write(_LOGIN_FILE, ("\n".join(lines)).encode())

    # -- the cache ------------------------------------------------------------

    @property
    def cache_bytes(self) -> int:
        return sum(size for _, size in self._cache_files)

    def _cache_content(self, size: int) -> bytes:
        """Mostly incompressible bytes with a compressible HTML fraction."""
        incompressible = int(size * 0.7)
        compressible = size - incompressible
        text = (_LOREM * (compressible // len(_LOREM) + 1))[:compressible]
        return self.rng.content_bytes(incompressible) + text

    def _store_in_cache(self, total_bytes: int) -> int:
        """Write ``total_bytes`` of new cache entries, evicting LRU as needed."""
        written = 0
        remaining = total_bytes
        while remaining > 0:
            chunk = min(remaining, 1 * MIB)
            self._evict_for(chunk)
            path = f"{_CACHE_DIR}/f_{self._cache_serial:06x}"
            self._cache_serial += 1
            self.vm.fs.write(path, self._cache_content(chunk))
            self._cache_files.append((path, chunk))
            written += chunk
            remaining -= chunk
        return written

    def _evict_for(self, incoming: int) -> None:
        while self._cache_files and self.cache_bytes + incoming > self.cache_limit_bytes:
            path, _ = self._cache_files.pop(0)
            if self.vm.fs.exists(path):
                self.vm.fs.remove(path)

    # -- browsing ------------------------------------------------------------

    def visit(self, hostname: str) -> PageLoad:
        """Load a page through the anonymizer and absorb its side effects."""
        if not self.vm.running:
            raise NymixError(f"browser's VM {self.vm.vm_id!r} is not running")
        outcome: FetchOutcome = self.fetcher.fetch(hostname, self.profile_token)
        response = outcome.response
        cached = self._store_in_cache(response.cacheable_bytes)
        if response.set_cookie_bytes:
            self.cookies[hostname] = (
                self.cookies.get(hostname, 0) + response.set_cookie_bytes
            )
            self._write_cookies()
        self.history.append(f"{self.vm.timeline.now:.3f} {hostname}")
        self._write_history()
        site: Optional[Website] = WEBSITE_CATALOG.get(hostname)
        if site is not None:
            # Rendering and JS heaps dirty guest RAM; revisits mostly reuse
            # already-dirty pages, so only dirty what head-room allows.
            want = site.session_dirty_bytes
            head_room = max(0, self.vm.memory.clean_bytes - 16 * MIB)
            self.vm.memory.dirty(min(want, head_room))
        return PageLoad(
            hostname=hostname,
            duration_s=outcome.duration_s,
            payload_bytes=response.body_bytes,
            cached_bytes_written=cached,
        )

    def set_cookie(self, key: str, size_bytes: int) -> None:
        """Store a cookie (first- or third-party) and persist the jar."""
        self.cookies[key] = size_bytes
        self._write_cookies()

    def login(self, hostname: str, username: str, password: str, remember: bool = True) -> None:
        """Sign in; with ``remember`` the credentials bind to this nym's state."""
        if remember:
            self.credentials[hostname] = StoredCredential(hostname, username, password)
            self._write_credentials()

    def has_credentials_for(self, hostname: str) -> bool:
        return hostname in self.credentials

    # -- introspection ---------------------------------------------------------

    def profile_summary(self) -> Dict[str, int]:
        return {
            "history_entries": len(self.history),
            "cookie_hosts": len(self.cookies),
            "stored_credentials": len(self.credentials),
            "cache_bytes": self.cache_bytes,
        }
