"""Third-party trackers: the profile-building adversary of §1 and §2.

"Today's Internet users must increasingly assume that by default all of
their online activities are tracked and that detailed profiles of their
identities and behaviors are being collected by every Web site they
visit [65], sold for marketing purposes [17, 53]" — and Alice worries
the resulting ad profile will "out" her pregnancy [30].

An :class:`AdNetwork` is embedded on several first-party sites.  Each
visit, it reads-or-sets its third-party cookie in the visiting browser
profile and appends the visit to the profile keyed by that cookie.  One
browser for everything ⇒ one linked dossier; one nym per role ⇒ disjoint
stubs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.sim.rng import SeededRng

_COOKIE_KEY_PREFIX = "third-party:"


@dataclass
class TrackingProfile:
    """What the ad network knows about one cookie identity."""

    cookie_id: str
    visits: List[str] = field(default_factory=list)

    def interests(self) -> Set[str]:
        """Crude interest segments inferred from visited hostnames."""
        segments = set()
        for hostname in self.visits:
            if "facebook" in hostname or "twitter" in hostname:
                segments.add("social")
            if "bbc" in hostname or "slashdot" in hostname:
                segments.add("news")
            if "babycenter" in hostname or "pregnancy" in hostname:
                segments.add("expecting-parent")  # the §2 hazard
            if "espn" in hostname:
                segments.add("sports")
        return segments


class AdNetwork:
    """A tracker embedded on a set of first-party sites."""

    def __init__(self, name: str, embedded_on: Set[str], rng: SeededRng) -> None:
        self.name = name
        self.embedded_on = set(embedded_on)
        self.rng = rng
        self.profiles: Dict[str, TrackingProfile] = {}

    def _cookie_key(self) -> str:
        return f"{_COOKIE_KEY_PREFIX}{self.name}"

    def observe_visit(self, browser, hostname: str) -> Optional[str]:
        """Called when ``browser`` loads ``hostname``.

        If this network is embedded there, it reads (or sets) its cookie
        in the browser's cookie jar and records the visit.  Returns the
        cookie id used, or None if the network is not on this site.
        """
        if hostname not in self.embedded_on:
            return None
        key = self._cookie_key()
        cookie_id = getattr(browser, "_tracker_ids", {}).get(key)
        if cookie_id is None:
            if not hasattr(browser, "_tracker_ids"):
                browser._tracker_ids = {}
            cookie_id = self.rng.token_hex(8)
            browser._tracker_ids[key] = cookie_id
            browser.set_cookie(key, len(cookie_id))  # persists with the jar
        profile = self.profiles.setdefault(cookie_id, TrackingProfile(cookie_id))
        profile.visits.append(hostname)
        return cookie_id

    # -- the adversary's questions -----------------------------------------------

    def profile_for(self, cookie_id: str) -> Optional[TrackingProfile]:
        return self.profiles.get(cookie_id)

    def can_link(self, hostname_a: str, hostname_b: str) -> bool:
        """Does any single profile span both sites?"""
        return any(
            hostname_a in profile.visits and hostname_b in profile.visits
            for profile in self.profiles.values()
        )

    def largest_dossier(self) -> int:
        if not self.profiles:
            return 0
        return max(len(set(p.visits)) for p in self.profiles.values())


def browse_with_trackers(manager, nymbox, hostname: str, networks: List[AdNetwork]):
    """Browse a page and let every embedded tracker observe it."""
    load = manager.timed_browse(nymbox, hostname)
    for network in networks:
        network.observe_visit(nymbox.browser, hostname)
    return load
