"""Guest process tables: the in-VM software surface, homogenized.

An exploit enumerating processes (`ps`, `/proc`) is another fingerprint
channel: a distinctive daemon set distinguishes users.  Nymix VMs boot
from one image with role-determined startup scripts, so every AnonVM
runs exactly the same processes with the same PIDs — one more surface
where all nyms look alike (§4.2's homogeneity goal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.vmm.vm import VirtualMachine, VmRole


@dataclass(frozen=True)
class GuestProcess:
    pid: int
    name: str
    user: str

    def ps_line(self) -> str:
        return f"{self.pid:>5} {self.user:<8} {self.name}"


#: deterministic per-role process sets, PIDs included (same boot order
#: from the same image every time)
_ROLE_TABLES = {
    VmRole.ANONVM: (
        (1, "init", "root"),
        (112, "udevd", "root"),
        (301, "Xorg", "root"),
        (412, "openbox", "user"),
        (498, "pulseaudio", "user"),
        (734, "chromium", "user"),
        (735, "chromium --type=renderer", "user"),
    ),
    VmRole.COMMVM: (
        (1, "init", "root"),
        (112, "udevd", "root"),
        (233, "nymix-anonymizer", "anon"),
        (234, "tor", "anon"),
    ),
    VmRole.SANIVM: (
        (1, "init", "root"),
        (112, "udevd", "root"),
        (245, "nymix-scrubd", "sani"),
        (246, "mat-daemon", "sani"),
    ),
    VmRole.HOSTOS: (
        (4, "System", "SYSTEM"),
        (388, "winlogon.exe", "SYSTEM"),
        (612, "explorer.exe", "user"),
    ),
}


def process_table(vm: VirtualMachine) -> List[GuestProcess]:
    """What ``ps aux`` shows inside this guest."""
    rows = _ROLE_TABLES.get(vm.spec.role, ((1, "init", "root"),))
    return [GuestProcess(pid=pid, name=name, user=user) for pid, name, user in rows]


def ps_output(vm: VirtualMachine) -> str:
    header = "  PID USER     COMMAND"
    return "\n".join([header] + [p.ps_line() for p in process_table(vm)])


def process_fingerprint(vm: VirtualMachine) -> Tuple:
    """The tuple a fingerprinting exploit would hash."""
    return tuple((p.pid, p.name) for p in process_table(vm))
