"""Guest-side software: websites, the browser, and installed OS images.

The AnonVM's untrusted interior.  :class:`Browser` models Chromium — the
paper's browser choice (§4) — with a capped cache, cookies, history and a
homogenized fingerprint; :mod:`repro.guest.websites` models the eight
sites of the §5.2 memory experiment and the four of the §5.3 storage
experiment; :mod:`repro.guest.installed_os` models the repairable
Windows/Linux images of §3.7 / Table 1.
"""

from repro.guest.browser import Browser, BrowserFingerprint, PageLoad
from repro.guest.installed_os import InstalledOs, INSTALLED_OS_CATALOG
from repro.guest.websites import (
    WEBSITE_CATALOG,
    Website,
    WebsiteServer,
    populate_internet,
)

__all__ = [
    "Browser",
    "BrowserFingerprint",
    "PageLoad",
    "InstalledOs",
    "INSTALLED_OS_CATALOG",
    "WEBSITE_CATALOG",
    "Website",
    "WebsiteServer",
    "populate_internet",
]
