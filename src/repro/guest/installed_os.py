"""Installed operating systems bootable as (non-anonymous) nyms (§3.7).

Nymix can boot the machine's already-installed OS inside a nymbox, with
the physical disk attached read-only behind a copy-on-write overlay so no
change ever reaches the real disk.  Windows installed on bare metal
objects to the "hardware" change and needs a standard repair pass before
it boots under KVM; Table 1 measures that repair time, the subsequent
boot time, and the size of the COW overlay the repair produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import VmStateError
from repro.sim.clock import Timeline
from repro.sim.rng import SeededRng
from repro.storage.block import BLOCK_SIZE, RamDisk
from repro.storage.image import BaseImage, CowOverlay

MIB = 1024 * 1024


@dataclass(frozen=True)
class WifiCredential:
    """A saved wireless network login on the installed OS."""

    ssid: str
    passphrase: str


@dataclass(frozen=True)
class InstalledOsProfile:
    """Measured characteristics of one installed OS (Table 1 rows)."""

    name: str
    family: str  # "windows" or "linux"
    needs_repair: bool
    repair_seconds: float
    boot_seconds: float
    repair_cow_bytes: int  # COW overlay size produced by repair + boot
    disk_blocks: int = 65536  # 256 MiB simulated physical disk
    #: network state §3.7 wants to leverage: saved WiFi logins
    wifi_credentials: tuple = (
        WifiCredential("HomeNet-5G", "correct horse battery"),
        WifiCredential("CoffeeShopGuest", "espresso123"),
    )


#: Table 1 of the paper, plus a Linux row (which "usually boots without
#: issue", i.e. zero repair).
INSTALLED_OS_CATALOG: Dict[str, InstalledOsProfile] = {
    profile.name: profile
    for profile in (
        InstalledOsProfile("Windows Vista", "windows", True, 133.7, 37.7, int(4.9 * MIB)),
        InstalledOsProfile("Windows 7", "windows", True, 129.3, 34.3, int(4.5 * MIB)),
        InstalledOsProfile("Windows 8", "windows", True, 157.0, 58.7, int(14.0 * MIB)),
        InstalledOsProfile("Ubuntu 12.04", "linux", False, 0.0, 21.0, int(1.2 * MIB)),
    )
}


class InstalledOs:
    """The machine's resident OS: a physical disk plus repair state.

    The physical disk is never written: :meth:`attach_cow` layers a RAM
    overlay over it, and both repair and boot write only to the overlay.
    """

    def __init__(self, profile: InstalledOsProfile, rng: SeededRng) -> None:
        self.profile = profile
        self.rng = rng
        self.physical_disk = BaseImage(
            image_id=f"installed-{profile.name.lower().replace(' ', '-')}",
            block_count=profile.disk_blocks,
        )
        self.repaired = not profile.needs_repair
        self._overlay: Optional[CowOverlay] = None

    def attach_cow(self) -> CowOverlay:
        """Create the copy-on-write view of the physical disk."""
        self._overlay = CowOverlay(self.physical_disk, RamDisk(self.profile.disk_blocks))
        return self._overlay

    @property
    def overlay(self) -> CowOverlay:
        if self._overlay is None:
            raise VmStateError(
                f"{self.profile.name}: attach_cow() before using the overlay"
            )
        return self._overlay

    def _write_cow_bytes(self, total_bytes: int) -> None:
        """Scatter ``total_bytes`` of writes across the overlay."""
        blocks = max(1, total_bytes // BLOCK_SIZE)
        for _ in range(blocks):
            index = self.rng.randint(0, self.profile.disk_blocks - 1)
            self.overlay.write_block(index, self.rng.content_bytes(BLOCK_SIZE))

    def repair(self, timeline: Timeline) -> float:
        """Run the hardware-change repair pass.  Returns elapsed seconds.

        A no-op (0 s) for OSes that boot under KVM without complaint and
        for already-repaired images.
        """
        if self.repaired:
            return 0.0
        if self._overlay is None:
            self.attach_cow()
        duration = self.rng.jitter(self.profile.repair_seconds, 0.04)
        timeline.sleep(duration)
        # Repair rewrites driver/config state; this is most of Table 1's size.
        self._write_cow_bytes(int(self.profile.repair_cow_bytes * 0.8))
        self.repaired = True
        return duration

    def boot(self, timeline: Timeline) -> float:
        """Boot inside the nymbox.  Returns elapsed seconds."""
        if not self.repaired:
            raise VmStateError(
                f"{self.profile.name} needs repair before it can boot under KVM"
            )
        if self._overlay is None:
            self.attach_cow()
        duration = self.rng.jitter(self.profile.boot_seconds, 0.05)
        timeline.sleep(duration)
        self._write_cow_bytes(int(self.profile.repair_cow_bytes * 0.2))
        return duration

    @property
    def cow_bytes(self) -> int:
        """Size of the copy-on-write overlay (Table 1's "Size" column)."""
        return self.overlay.used_bytes if self._overlay is not None else 0

    def network_credentials(self) -> tuple:
        """Saved WiFi logins Nymix may reuse to join LANs (§3.7).

        Reading them requires the repaired/booted OS (the credential
        store is inside the installed system, not on raw blocks).
        """
        if self._overlay is None:
            raise VmStateError(
                f"{self.profile.name}: boot the OS before reading its WiFi store"
            )
        return self.profile.wifi_credentials

    @property
    def physical_disk_modified(self) -> bool:
        """Must always be False: the real disk is untouchable through the COW."""
        return False  # BaseImage is immutable; writes cannot reach it

    def discard_session(self) -> int:
        """Drop all COW changes (default: nothing persists, §3.7)."""
        return self.overlay.discard_changes() if self._overlay is not None else 0
