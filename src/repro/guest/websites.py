"""The simulated web: site profiles calibrated to the paper's workloads.

Two experiments depend on realistic per-site behaviour:

* §5.2 (Figure 3) visits Gmail, Twitter, Youtube, Tor Blog, BBC, Facebook,
  Slashdot and ESPN — one per nym — and measures dirtied guest memory.
* §5.3 (Figure 6) saves/restores nyms pinned to Gmail, Facebook, Twitter
  and the Tor Blog for ten cycles; nym size growth is dominated by the
  Chromium cache each site accretes.

Sizes are per-visit deltas: the first visit downloads the heavy landing
payload; revisits fetch only updates (the browser cache absorbs the rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.net.addresses import Ipv4Address
from repro.net.internet import HttpResponse, Internet, Server

MIB = 1024 * 1024
KIB = 1024


@dataclass(frozen=True)
class Website:
    """Behavioural profile of one site."""

    hostname: str
    ip: str
    first_visit_bytes: int  # network payload of a cold landing-page load
    revisit_bytes: int  # payload of a warm (cached) visit with fresh updates
    cacheable_first_bytes: int  # what the cache keeps from a cold visit
    cacheable_revisit_bytes: int  # cache growth per revisit (new content)
    cookie_bytes: int
    session_dirty_bytes: int  # guest RAM dirtied by rendering + JS heap
    requires_login: bool

    @property
    def name(self) -> str:
        return self.hostname.split(".")[0]


def _site(
    hostname: str,
    ip: str,
    first_mb: float,
    revisit_mb: float,
    cache_first_mb: float,
    cache_revisit_mb: float,
    cookie_kb: float,
    dirty_mb: float,
    login: bool,
) -> Website:
    return Website(
        hostname=hostname,
        ip=ip,
        first_visit_bytes=int(first_mb * MIB),
        revisit_bytes=int(revisit_mb * MIB),
        cacheable_first_bytes=int(cache_first_mb * MIB),
        cacheable_revisit_bytes=int(cache_revisit_mb * MIB),
        cookie_bytes=int(cookie_kb * KIB),
        session_dirty_bytes=int(dirty_mb * MIB),
        requires_login=login,
    )


#: The eight sites of §5.2 plus their §5.3 storage behaviour.  Facebook is
#: the heaviest accumulator, the Tor Blog the lightest — matching the
#: ordering of Figure 6.
WEBSITE_CATALOG: Dict[str, Website] = {
    site.hostname: site
    for site in (
        _site("gmail.com", "198.51.100.10", 4.5, 1.2, 14.0, 3.2, 6, 95, True),
        _site("twitter.com", "198.51.100.11", 3.0, 1.0, 9.5, 2.3, 5, 80, True),
        _site("youtube.com", "198.51.100.12", 9.0, 4.0, 22.0, 6.0, 4, 120, False),
        _site("blog.torproject.org", "198.51.100.13", 0.9, 0.3, 3.5, 0.9, 1, 40, False),
        _site("bbc.co.uk", "198.51.100.14", 2.8, 1.1, 8.0, 2.0, 3, 70, False),
        _site("facebook.com", "198.51.100.15", 5.5, 1.8, 17.5, 4.3, 8, 110, True),
        _site("slashdot.org", "198.51.100.16", 1.4, 0.5, 4.5, 1.2, 2, 55, False),
        _site("espn.com", "198.51.100.17", 3.5, 1.4, 10.0, 2.5, 4, 85, False),
    )
}

#: Visit order used in the Figure 3 experiment.
FIGURE3_VISIT_ORDER: List[str] = [
    "gmail.com",
    "twitter.com",
    "youtube.com",
    "blog.torproject.org",
    "bbc.co.uk",
    "facebook.com",
    "slashdot.org",
    "espn.com",
]

#: The four persistent-nym sites of Figure 6.
FIGURE6_SITES: List[str] = [
    "gmail.com",
    "facebook.com",
    "twitter.com",
    "blog.torproject.org",
]


class WebsiteServer(Server):
    """A site on the simulated Internet serving its profiled payloads."""

    def __init__(self, site: Website) -> None:
        super().__init__(site.hostname, Ipv4Address.parse(site.ip))
        self.site = site
        self._known_clients: Dict[str, int] = {}  # client id -> visit count

    def handle(self, path: str, request_bytes: int = 500) -> HttpResponse:
        self.requests_served += 1
        client_id = path  # the fetcher passes a per-profile token as the path
        visits = self._known_clients.get(client_id, 0)
        self._known_clients[client_id] = visits + 1
        if visits == 0:
            return HttpResponse(
                status=200,
                body_bytes=self.site.first_visit_bytes,
                cacheable_bytes=self.site.cacheable_first_bytes,
                set_cookie_bytes=self.site.cookie_bytes,
            )
        return HttpResponse(
            status=200,
            body_bytes=self.site.revisit_bytes,
            cacheable_bytes=self.site.cacheable_revisit_bytes,
            set_cookie_bytes=0,
        )


class DownloadMirror(Server):
    """The DeterLab-hosted mirror serving linux-3.14.2.tar.xz (§5.2).

    kernel.org lists linux-3.14.2.tar.xz at about 76 MiB; the paper
    guarantees the 10 Mbit/s rate by serving it from inside the testbed.
    """

    KERNEL_BYTES = 76 * MIB

    def __init__(self, hostname: str = "mirror.deterlab.net", ip: str = "198.51.100.50") -> None:
        super().__init__(hostname, Ipv4Address.parse(ip))

    def handle(self, path: str, request_bytes: int = 500) -> HttpResponse:
        self.requests_served += 1
        return HttpResponse(status=200, body_bytes=self.KERNEL_BYTES)


def populate_internet(internet: Internet) -> Dict[str, Server]:
    """Register the full catalog plus the download mirror; returns by hostname."""
    servers: Dict[str, Server] = {}
    for site in WEBSITE_CATALOG.values():
        server = WebsiteServer(site)
        internet.add_server(server)
        servers[site.hostname] = server
    mirror = DownloadMirror()
    internet.add_server(mirror)
    servers[mirror.hostname] = mirror
    return servers
