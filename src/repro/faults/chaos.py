"""The seeded chaos scenario behind ``repro chaos``.

One nym lives through a full :class:`FaultPlan`: its snapshot upload is
interrupted mid-flight, relays churn out from under its circuits, its
wire flaps, and finally its VMs crash outright — after which the manager
relaunches it from quasi-persistent state (§3.5 end to end).  The run is
driven entirely by the simulation seed, so the same seed produces the
same faults, the same recoveries, and a byte-identical event journal.

This module is imported on demand (CLI, tests) rather than from
``repro.faults`` itself: it reaches into ``repro.core``, which in turn
uses the faults package's retry machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cloud import make_dropbox
from repro.core import NymManager, NymixConfig
from repro.errors import NymixError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan

NYM_NAME = "chaos"
NYM_PASSWORD = "chaos-pw"
_PROVIDER = "dropbox.com"
_ACCOUNT = "chaos-user"
_SITE = "bbc.co.uk"
#: slack between a fault firing and the workload probing it
_PROBE_DELAY_S = 0.5


@dataclass
class StepResult:
    """One workload step taken against an injected fault."""

    kind: str
    ok: bool
    detail: str


@dataclass
class ChaosReport:
    """What a chaos run planned, injected, survived, and measured."""

    seed: int
    quick: bool
    planned: int
    anonymizer: str = "tor"
    steps: List[StepResult] = field(default_factory=list)
    injected: List[dict] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    journal_events: int = 0

    def ok(self, kind: str, detail: str) -> None:
        self.steps.append(StepResult(kind=kind, ok=True, detail=detail))

    def fail(self, kind: str, detail: str) -> None:
        self.steps.append(StepResult(kind=kind, ok=False, detail=detail))

    @property
    def survived(self) -> bool:
        return bool(self.steps) and all(step.ok for step in self.steps)

    def kinds_survived(self) -> List[str]:
        return sorted({step.kind for step in self.steps if step.ok})

    def summary(self) -> str:
        lines = [
            f"chaos run: seed={self.seed} quick={self.quick} "
            f"anonymizer={self.anonymizer} "
            f"({self.planned} faults planned, {len(self.injected)} delivered)"
        ]
        lines.append("faults:")
        for entry in self.injected:
            target = f" target={entry['target']}" if entry.get("target") else ""
            lines.append(
                f"  t+{entry['at_s']:7.1f}s  {entry['kind']:<20} "
                f"{entry['outcome']}{target}"
            )
        lines.append("steps:")
        for step in self.steps:
            mark = "ok " if step.ok else "FAIL"
            lines.append(f"  [{mark}] {step.kind:<20} {step.detail}")
        if self.metrics:
            lines.append("recovery metrics:")
            width = max(len(name) for name in self.metrics)
            for name in sorted(self.metrics):
                value = self.metrics[name]
                if isinstance(value, dict):  # histogram
                    rendered = f"count={value['count']} sum={value['sum']:.2f}s"
                else:
                    rendered = f"{value:g}"
                lines.append(f"  {name:<{width}}  {rendered}")
        lines.append(f"journal: {self.journal_events} events")
        lines.append("verdict: SURVIVED" if self.survived else "verdict: DIED")
        return "\n".join(lines)


_REPORT_METRIC_PREFIXES = (
    "faults.",
    "retry.",
    "tor.circuit.rebuilds",
    "tor.newnym",
    "cloud.upload.retries",
    "cloud.download.retries",
    "net.link.flaps",
    "vmm.vm.crashes",
    "nym.recovered",
    "mixnet.node.crashes",
    "mixnet.reroutes",
)


def _ensure_live(manager: NymManager, report: ChaosReport):
    """The chaos nym's box — relaunching it first if it crashed."""
    box = manager.nymboxes.get(NYM_NAME)
    if box is not None and box.crashed:
        box = manager.recover_nym(NYM_NAME, NYM_PASSWORD)
    return box


def _run_step(manager: NymManager, spec, report: ChaosReport) -> None:
    """Probe the system right after one fault fired."""
    kind = spec.kind
    try:
        box = _ensure_live(manager, report)
        if box is None:
            report.fail(kind, "nymbox vanished")
            return
        if kind == "cloud.upload":
            manager.store_nym(
                box, password=NYM_PASSWORD,
                provider_host=_PROVIDER, account_username=_ACCOUNT,
            )
            report.ok(kind, "snapshot stored through the interrupted upload")
        elif kind == "cloud.download":
            report.ok(kind, "armed; bites the next §3.5 download")
        elif kind == "vmm.crash":
            # _ensure_live already relaunched; prove the restored nym works.
            box = manager.nymboxes[NYM_NAME]
            box.browse(_SITE)
            report.ok(kind, "relaunched from stored state and browsing")
        elif kind == "mixnet.node_crash":
            box.browse(_SITE)
            report.ok(kind, "rerouted through surviving mix nodes")
        else:
            box.browse(_SITE)
            report.ok(kind, "browsed through the fault")
    except NymixError as exc:
        # The fault may have landed mid-step (e.g. a crash during an
        # upload's sleep).  One recovery attempt before giving up.
        box = manager.nymboxes.get(NYM_NAME)
        if box is not None and box.crashed:
            try:
                manager.recover_nym(NYM_NAME, NYM_PASSWORD).browse(_SITE)
                report.ok(kind, f"recovered after {type(exc).__name__} mid-step")
                return
            except NymixError as retry_exc:
                exc = retry_exc
        report.fail(kind, f"{type(exc).__name__}: {exc}")


def run_chaos(
    seed: int = 0,
    quick: bool = False,
    duration_s: Optional[float] = None,
    anonymizer: str = "tor",
    policies=None,
) -> Tuple[NymManager, ChaosReport]:
    """Run the full chaos scenario; returns the manager and its report.

    ``duration_s`` overrides the fault window (default 900 s, 300 s in
    quick mode).  ``anonymizer`` picks the transport under test: the
    default Tor run is byte-identical to the pre-mixnet scenario, while
    ``"mixnet"`` adds mix-node churn faults to the plan.  ``policies``
    (a ``FleetPolicies``, e.g. from ``--tenant-config``) binds the chaos
    nym to the first configured tenant and adds a tenant-burst fault, so
    ingress shaping is exercised under fire; without it the run is
    byte-identical to the tenancy-unaware scenario.
    """
    manager = NymManager(NymixConfig(seed=seed))
    manager.add_cloud_provider(make_dropbox())
    manager.create_cloud_account(_PROVIDER, _ACCOUNT, "cloud-pw")
    tenant = ""
    if policies is not None and policies.tenants:
        from repro.tenancy.registry import TenantRegistry

        registry = TenantRegistry(manager.timeline).attach()
        registry.apply_initial(policies.tenants)
        # Prefer a rate-limited tenant: the injected burst targets one,
        # and the nym should be the one absorbing that debt as delay.
        limited = [
            t.name for t in policies.tenants if t.rate.ingress_bytes_per_s
        ]
        tenant = limited[0] if limited else policies.tenants[0].name
    nymbox = manager.create_nym(name=NYM_NAME, anonymizer=anonymizer, tenant=tenant)
    manager.timed_browse(nymbox, _SITE)
    # Store once BEFORE arming: crash recovery needs a snapshot to reload,
    # and this baseline save runs on the seed's untouched happy path.
    manager.store_nym(
        nymbox, password=NYM_PASSWORD, provider_host=_PROVIDER, account_username=_ACCOUNT
    )

    if duration_s is None:
        duration_s = 300.0 if quick else 900.0
    plan = FaultPlan.seeded(
        manager.timeline.fork_rng("chaos-plan"),
        duration_s,
        relay_churns=1 if quick else 2,
        circuit_teardowns=1,
        link_flaps=1,
        upload_failures=1,
        download_failures=1,
        vm_crashes=1,
        mixnet_node_crashes=2 if anonymizer == "mixnet" else 0,
        tenant_bursts=1 if tenant else 0,
    )
    injector = FaultInjector(manager.timeline, plan).arm(manager)
    report = ChaosReport(
        seed=seed, quick=quick, planned=len(plan), anonymizer=anonymizer
    )

    armed_at = manager.timeline.now
    for spec in plan:
        target = armed_at + spec.at_s + _PROBE_DELAY_S
        if target > manager.timeline.now:
            manager.timeline.sleep(target - manager.timeline.now)
        _run_step(manager, spec, report)

    # Final health check and an orderly end of session (persistent re-save).
    try:
        box = _ensure_live(manager, report)
        if box is None:
            report.fail("final", "nymbox vanished before the final check")
        else:
            box.browse(_SITE)
            manager.close_session(box, NYM_PASSWORD)
            report.ok("final", "browsed, re-saved, and closed cleanly")
    except NymixError as exc:
        report.fail("final", f"{type(exc).__name__}: {exc}")

    report.injected = list(injector.injected)
    snapshot = manager.obs.snapshot()
    report.metrics = {
        name: value
        for name, value in snapshot.items()
        if any(
            name == prefix or name.startswith(prefix)
            for prefix in _REPORT_METRIC_PREFIXES
        )
    }
    report.journal_events = len(manager.obs.journal)
    return manager, report
