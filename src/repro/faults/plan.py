"""Fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a deterministic schedule of :class:`FaultSpec`
entries.  Plans come from an explicit list (tests pinning one exact
failure) or from :meth:`FaultPlan.seeded` (a :class:`SeededRng` fork
drawing a reproducible chaos scenario).  Times are measured in seconds
**after the injector is armed**, so the same plan composes onto any
workload regardless of how much simulated time bootstrapping consumed.

Two delivery styles exist, chosen by the fault kind:

* **timed** faults fire on the timeline at their scheduled instant and
  mutate the world directly (a relay leaves the consensus, a wire flaps,
  a nymbox's VMs crash);
* **inline** faults arm at their scheduled instant but bite only when the
  matching operation next runs (`cloud.upload` fails the next upload,
  `tor.circuit_build` fails the next circuit construction) — modelling
  transient errors that only exist on the request path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.errors import SimulationError
from repro.sim.rng import SeededRng

#: Faults applied to the world at their scheduled time.
TIMED_KINDS = frozenset(
    {
        "tor.relay_churn",
        "tor.circuit_teardown",
        "net.link_flap",
        "vmm.crash",
        "fleet.host_crash",
        "fleet.host_drain",
        "mixnet.node_crash",
        "tenancy.tenant_burst",
    }
)
#: Faults queued at their scheduled time and consumed by the next matching
#: operation.
INLINE_KINDS = frozenset({"tor.circuit_build", "cloud.upload", "cloud.download"})

ALL_KINDS = TIMED_KINDS | INLINE_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One planned failure.

    ``param`` is kind-specific: link-flap outage seconds, the fraction of
    an upload/download that lands before the connection dies, and unused
    elsewhere.  An empty ``target`` lets the injector pick a live victim
    deterministically at fire time.
    """

    at_s: float
    kind: str
    target: str = ""
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            known = ", ".join(sorted(ALL_KINDS))
            raise SimulationError(f"unknown fault kind {self.kind!r} (known: {known})")
        if self.at_s < 0:
            raise SimulationError(f"fault scheduled before arming: {self.at_s!r}")

    @property
    def timed(self) -> bool:
        return self.kind in TIMED_KINDS

    def export(self) -> dict:
        return {
            "at_s": round(self.at_s, 6),
            "kind": self.kind,
            "target": self.target,
            "param": round(self.param, 6),
        }


class FaultPlan:
    """An ordered, immutable schedule of faults."""

    def __init__(self, events: Sequence[FaultSpec]) -> None:
        self.events: tuple = tuple(
            sorted(events, key=lambda e: (e.at_s, e.kind, e.target))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.events)

    def by_kind(self, kind: str) -> List[FaultSpec]:
        return [e for e in self.events if e.kind == kind]

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(self.events + other.events)

    @classmethod
    def seeded(
        cls,
        rng: SeededRng,
        duration_s: float,
        relay_churns: int = 1,
        circuit_teardowns: int = 1,
        circuit_build_failures: int = 0,
        link_flaps: int = 1,
        upload_failures: int = 1,
        download_failures: int = 0,
        vm_crashes: int = 1,
        host_crashes: int = 0,
        mixnet_node_crashes: int = 0,
        host_drains: int = 0,
        tenant_bursts: int = 0,
    ) -> "FaultPlan":
        """Draw a reproducible chaos schedule across ``duration_s`` seconds.

        Every draw comes from ``rng``, so the same seed yields the same
        plan — the foundation of byte-identical chaos journals.
        """
        if duration_s <= 0:
            raise SimulationError(f"fault window must be positive: {duration_s!r}")
        events: List[FaultSpec] = []

        def spread(kind: str, count: int, lo: float, hi: float, param=None) -> None:
            for _ in range(count):
                at = rng.uniform(lo * duration_s, hi * duration_s)
                events.append(
                    FaultSpec(
                        at_s=at,
                        kind=kind,
                        param=param(rng) if param is not None else 0.0,
                    )
                )

        # Inline faults arm early so they bite the workload's first pass
        # through the matching operation; timed faults spread over the run.
        spread("cloud.upload", upload_failures, 0.0, 0.1,
               param=lambda r: r.uniform(0.2, 0.8))
        spread("cloud.download", download_failures, 0.0, 0.1,
               param=lambda r: r.uniform(0.2, 0.8))
        spread("tor.circuit_build", circuit_build_failures, 0.0, 0.1)
        spread("tor.relay_churn", relay_churns, 0.15, 0.9)
        spread("tor.circuit_teardown", circuit_teardowns, 0.15, 0.9)
        spread("net.link_flap", link_flaps, 0.15, 0.9,
               param=lambda r: r.uniform(2.0, 8.0))
        spread("vmm.crash", vm_crashes, 0.3, 0.9)
        spread("fleet.host_crash", host_crashes, 0.3, 0.9)
        # Appended last: earlier kinds' draws must not move when a plan
        # adds mixnet churn, or existing same-seed journals would change.
        spread("mixnet.node_crash", mixnet_node_crashes, 0.15, 0.9)
        # Appended after mixnet churn, same rule: the tenancy kinds'
        # draws must not perturb any earlier kind's schedule.
        spread("fleet.host_drain", host_drains, 0.2, 0.8)
        spread("tenancy.tenant_burst", tenant_bursts, 0.2, 0.8,
               param=lambda r: r.uniform(8.0, 64.0))  # burst debt, MiB
        return cls(events)

    def __repr__(self) -> str:
        kinds = {}
        for event in self.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        summary = ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items()))
        return f"FaultPlan({len(self.events)} faults: {summary})"
