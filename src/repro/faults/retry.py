"""Retry with capped exponential backoff, on simulated time.

Every subsystem that survives injected faults does it through
:func:`retry_call`: attempt the operation, and on a retryable error sleep
a capped-exponential backoff on the timeline (so other scheduled
activity — a link coming back up, a relay churn — runs during the wait)
and try again.  Attempts, backoff seconds, and exhaustion all land in
``timeline.obs`` so chaos reports can show the recovery work, not just
the final outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar, Union

from repro.errors import RetryExhaustedError, SimulationError

T = TypeVar("T")

ExcTypes = Union[Type[BaseException], Tuple[Type[BaseException], ...]]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempt budget and backoff shape.

    Backoff after the ``n``-th failure is
    ``min(max_backoff_s, base_backoff_s * backoff_factor ** (n - 1))`` —
    capped exponential, no jitter (determinism comes first here; the
    simulation's other timing models already provide variance).
    """

    max_attempts: int = 5
    base_backoff_s: float = 0.5
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(f"max_attempts must be >= 1: {self.max_attempts!r}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise SimulationError("backoff seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise SimulationError(
                f"backoff_factor must be >= 1: {self.backoff_factor!r}"
            )

    def backoff_s(self, failures: int) -> float:
        """Seconds to wait after the ``failures``-th consecutive failure."""
        if failures < 1:
            raise SimulationError(f"failures must be >= 1: {failures!r}")
        return min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_factor ** (failures - 1),
        )


#: Conservative default used where callers don't say otherwise.
DEFAULT_POLICY = RetryPolicy()


def retry_call(
    timeline,
    fn: Callable[[], T],
    *,
    policy: RetryPolicy = DEFAULT_POLICY,
    retryable: ExcTypes,
    site: str,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    reraise: bool = False,
) -> T:
    """Call ``fn`` until it succeeds or the policy's attempts run out.

    ``site`` names the operation in metrics/events (e.g. ``cloud.upload``,
    ``tor.circuit_build``).  Non-``retryable`` exceptions propagate
    immediately.  ``on_retry(failures, exc)`` runs after each backoff
    sleep, right before the next attempt — the hook for refreshing state
    the failure may have invalidated.  On exhaustion a
    :class:`RetryExhaustedError` chains the last error, unless
    ``reraise`` asks for the original exception type (callers whose API
    contract promises a specific error class).
    """
    obs = timeline.obs
    failures = 0
    while True:
        try:
            result = fn()
        except retryable as exc:
            failures += 1
            obs.metrics.counter("retry.attempts").inc()
            if failures >= policy.max_attempts:
                obs.metrics.counter("retry.exhausted").inc()
                obs.event(
                    "retry.exhausted",
                    site=site,
                    attempts=failures,
                    error=type(exc).__name__,
                )
                if reraise:
                    raise
                raise RetryExhaustedError(
                    f"{site}: gave up after {failures} attempts: {exc}"
                ) from exc
            backoff = policy.backoff_s(failures)
            obs.metrics.histogram("retry.backoff_s").observe(backoff)
            obs.event(
                "retry.backoff",
                site=site,
                attempt=failures,
                backoff_s=round(backoff, 6),
                error=type(exc).__name__,
            )
            timeline.sleep(backoff)
            if on_retry is not None:
                on_retry(failures, exc)
        else:
            if failures:
                obs.event("retry.recovered", site=site, attempts=failures + 1)
            return result
