"""The fault injector: delivers a :class:`FaultPlan` into a live simulation.

Arming an injector schedules the plan's faults onto the timeline and
publishes the injector as ``timeline.faults``, where the operation paths
consult it:

* timed faults mutate the world when their moment arrives — the injector
  reaches the victim through the manager (directory, nymboxes, wires);
* inline faults sit in per-site queues until the matching operation asks
  ``maybe_fail(site)`` and gets the planned transient error thrown at it.

When no injector is armed, ``timeline.faults`` is :data:`NULL_FAULTS` —
the same API where every check is a constant-time no-op, mirroring the
``NULL_OBS`` pattern.  The injector itself imports nothing from core or
the anonymizers (avoiding cycles); victims are reached by duck typing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CircuitError, SimulationError, TransientCloudError
from repro.faults.plan import FaultPlan, FaultSpec

#: Error class thrown by ``maybe_fail`` for each inline site.
_SITE_ERRORS = {
    "cloud.upload": TransientCloudError,
    "cloud.download": TransientCloudError,
    "tor.circuit_build": CircuitError,
}


class NullFaultInjector:
    """No injector armed: every consultation is a cheap no-op."""

    active = False

    def take(self, site: str) -> None:
        return None

    def maybe_fail(self, site: str) -> None:
        return None

    def __repr__(self) -> str:
        return "NullFaultInjector()"


#: The process-wide disabled-faults singleton; a fresh Timeline carries this.
NULL_FAULTS = NullFaultInjector()


class FaultInjector:
    """Delivers one :class:`FaultPlan` into the simulation it is armed on."""

    active = True

    def __init__(self, timeline, plan: FaultPlan) -> None:
        self.timeline = timeline
        self.plan = plan
        self.manager = None
        self.injected: List[dict] = []
        self._inline: Dict[str, List[FaultSpec]] = {}
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self, manager=None) -> "FaultInjector":
        """Schedule the plan (times relative to now) and take over
        ``timeline.faults``.  ``manager`` is the handle timed faults use to
        find victims; inline-only plans can arm without one."""
        if self._armed:
            raise SimulationError("fault injector is already armed")
        self._armed = True
        self.manager = manager
        for spec in self.plan:
            self.timeline.after(spec.at_s, lambda s=spec: self._fire(s))
        self.timeline.faults = self
        self.timeline.obs.event("faults.armed", count=len(self.plan))
        return self

    def disarm(self) -> None:
        self.timeline.faults = NULL_FAULTS

    # -- consultation by the operation paths ----------------------------------

    def take(self, site: str) -> Optional[FaultSpec]:
        """Pop the oldest armed inline fault for ``site``, if any."""
        queue = self._inline.get(site)
        if not queue:
            return None
        spec = queue.pop(0)
        self.timeline.obs.event("faults.consumed", kind=spec.kind, site=site)
        return spec

    def maybe_fail(self, site: str) -> None:
        """Raise the planned transient error if an inline fault is armed."""
        spec = self.take(site)
        if spec is None:
            return
        error_cls = _SITE_ERRORS.get(site, TransientCloudError)
        raise error_cls(f"injected fault at {site}")

    # -- firing ---------------------------------------------------------------

    def _fire(self, spec: FaultSpec) -> None:
        if not spec.timed:
            self._inline.setdefault(spec.kind, []).append(spec)
            self._record(spec, outcome="armed")
            return
        handler = {
            "tor.relay_churn": self._fire_tor_relay_churn,
            "tor.circuit_teardown": self._fire_tor_circuit_teardown,
            "net.link_flap": self._fire_net_link_flap,
            "vmm.crash": self._fire_vmm_crash,
            "fleet.host_crash": self._fire_fleet_host_crash,
            "fleet.host_drain": self._fire_fleet_host_drain,
            "mixnet.node_crash": self._fire_mixnet_node_crash,
            "tenancy.tenant_burst": self._fire_tenancy_tenant_burst,
        }[spec.kind]
        handler(spec)

    def _live_nymboxes(self) -> List:
        boxes = getattr(self.manager, "nymboxes", None)
        if not boxes:
            return []
        return [boxes[name] for name in sorted(boxes)]

    def _victim_nymbox(self, target: str):
        """The named nymbox, or the first live one in name order."""
        boxes = self._live_nymboxes()
        if target:
            for box in boxes:
                if box.nym.name == target:
                    return box
            return None
        return boxes[0] if boxes else None

    def _tor_clients(self) -> List:
        """Live anonymizers that look like Tor clients (duck-typed)."""
        return [
            box.anonymizer
            for box in self._live_nymboxes()
            if hasattr(box.anonymizer, "circuits")
            and getattr(box.anonymizer, "started", False)
        ]

    def _fire_tor_relay_churn(self, spec: FaultSpec) -> None:
        directory = getattr(self.manager, "directory", None)
        if directory is None:
            self._record(spec, outcome="no_directory")
            return
        nickname = spec.target
        if not nickname:
            # Prefer a relay some live circuit actually uses, so the churn
            # forces a rebuild rather than disappearing into the consensus.
            for client in self._tor_clients():
                current = getattr(client, "_current", None)
                if current is not None and current.built:
                    nickname = current.exit.descriptor.nickname
                    break
        if not nickname:
            consensus = directory.consensus(self.timeline.now)
            exits = consensus.exits()
            if not exits:
                self._record(spec, outcome="no_exits")
                return
            nickname = exits[-1].nickname
        directory.churn_relay(nickname)
        self._record(spec, outcome="churned", target=nickname)

    def _fire_tor_circuit_teardown(self, spec: FaultSpec) -> None:
        for client in self._tor_clients():
            current = getattr(client, "_current", None)
            if current is not None and current.built:
                current.destroy()
                self._record(spec, outcome="torn_down")
                return
        self._record(spec, outcome="no_circuit")

    def _fire_net_link_flap(self, spec: FaultSpec) -> None:
        box = self._victim_nymbox(spec.target)
        if box is None or getattr(box, "destroyed", False):
            self._record(spec, outcome="no_target")
            return
        down_for = spec.param if spec.param > 0 else 5.0
        box.wire.flap(down_for)
        self._record(spec, outcome="flapped", target=box.nym.name)

    def _fire_vmm_crash(self, spec: FaultSpec) -> None:
        box = self._victim_nymbox(spec.target)
        if box is None or getattr(box, "destroyed", False):
            self._record(spec, outcome="no_target")
            return
        box.crash()
        self._record(spec, outcome="crashed", target=box.nym.name)

    def _fire_fleet_host_crash(self, spec: FaultSpec) -> None:
        # Armed with a Fleet (or anything exposing crash_host) as the
        # manager handle; an empty target lets the fleet pick the live
        # host with the most residents.
        crash_host = getattr(self.manager, "crash_host", None)
        if crash_host is None:
            self._record(spec, outcome="no_fleet")
            return
        host_id = crash_host(spec.target)
        if host_id is None:
            self._record(spec, outcome="no_target")
            return
        self._record(spec, outcome="host_crashed", target=host_id)

    def _fire_fleet_host_drain(self, spec: FaultSpec) -> None:
        # A surprise rolling-upgrade drain.  advance=False: this runs
        # inside a timeline callback, where evacuation boots must overlap
        # rather than sleep (the same constraint as crash recovery).  An
        # empty target drains the serving host with the most residents.
        drain_host = getattr(self.manager, "drain_host", None)
        if drain_host is None:
            self._record(spec, outcome="no_fleet")
            return
        host_id = drain_host(spec.target, advance=False)
        if host_id is None:
            self._record(spec, outcome="no_target")
            return
        self._record(spec, outcome="host_drained", target=host_id)

    def _fire_tenancy_tenant_burst(self, spec: FaultSpec) -> None:
        # Inject ingress-bucket debt: the tenant's traffic surges past
        # its rate limit and subsequent sends absorb the debt as delay.
        # ``param`` is the burst size in MiB; the victim is the named
        # tenant, or the first rate-limited tenant in name order.
        registry = getattr(self.timeline, "tenancy", None)
        if registry is None or not getattr(registry, "active", False):
            self._record(spec, outcome="no_tenancy")
            return
        tenants = [spec.target] if spec.target else sorted(registry.policies)
        debt_bytes = int((spec.param if spec.param > 0 else 16.0) * 1024 * 1024)
        for tenant in tenants:
            if registry.burst(tenant, debt_bytes):
                self._record(spec, outcome="burst", target=tenant)
                return
        self._record(spec, outcome="no_target")

    def _fire_mixnet_node_crash(self, spec: FaultSpec) -> None:
        # Reached through the manager's lazy accessor with create=False:
        # a run that never launched a mixnet nym has no topology, and the
        # fault must not conjure one just to break it.
        topology_of = getattr(self.manager, "mixnet_topology", None)
        topology = topology_of(create=False) if callable(topology_of) else None
        if topology is None:
            self._record(spec, outcome="no_mixnet")
            return
        crashed = topology.crash_node(spec.target)
        if crashed is None:
            self._record(spec, outcome="no_target")
            return
        self._record(spec, outcome="node_crashed", target=crashed)

    # -- bookkeeping -----------------------------------------------------------

    def _record(self, spec: FaultSpec, outcome: str, target: str = "") -> None:
        entry = dict(spec.export(), outcome=outcome)
        if target:
            entry["target"] = target
        self.injected.append(entry)
        obs = self.timeline.obs
        obs.metrics.counter("faults.injected").inc()
        obs.event(
            "faults.injected",
            kind=spec.kind,
            target=entry["target"],
            outcome=outcome,
        )

    def __repr__(self) -> str:
        return (
            f"FaultInjector(planned={len(self.plan)}, "
            f"delivered={len(self.injected)}, armed={self._armed})"
        )
