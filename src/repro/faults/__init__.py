"""repro.faults: deterministic fault injection and the retry machinery.

The robustness pillar.  :class:`FaultPlan` describes what goes wrong and
when; :class:`FaultInjector` delivers it into a live simulation through
``timeline.faults``; :class:`RetryPolicy`/:func:`retry_call` are how the
rest of the stack survives.  ``run_chaos`` drives a full seeded chaos
scenario end to end.  See ``docs/robustness.md``.
"""

from repro.faults.injector import NULL_FAULTS, FaultInjector, NullFaultInjector
from repro.faults.plan import (
    ALL_KINDS,
    INLINE_KINDS,
    TIMED_KINDS,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import DEFAULT_POLICY, RetryPolicy, retry_call

__all__ = [
    "ALL_KINDS",
    "DEFAULT_POLICY",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INLINE_KINDS",
    "NULL_FAULTS",
    "NullFaultInjector",
    "RetryPolicy",
    "TIMED_KINDS",
    "retry_call",
]
