"""Cryptographic primitives for nym state encryption and onion routing.

Implemented from scratch (pure Python) where the standard library has no
equivalent:

* :mod:`repro.crypto.chacha20` — the ChaCha20 stream cipher (RFC 8439).
* :mod:`repro.crypto.poly1305` — the Poly1305 one-time authenticator.
* :mod:`repro.crypto.aead` — ChaCha20-Poly1305 AEAD composition.
* :mod:`repro.crypto.x25519` — Curve25519 Diffie-Hellman (RFC 7748).
* :mod:`repro.crypto.kdf` — HKDF and PBKDF2 (HMAC-SHA256 from stdlib).
* :mod:`repro.crypto.merkle` — Merkle trees for base-image verification.

These are real algorithms producing RFC test-vector-correct output, not
placeholders: nym state really is encrypted, onion layers really do peel.
"""

from repro.crypto.aead import ChaCha20Poly1305, SealedBox
from repro.crypto.chacha20 import chacha20_block, chacha20_xor
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract, pbkdf2_sha256
from repro.crypto.merkle import MerkleTree
from repro.crypto.poly1305 import poly1305_mac
from repro.crypto.x25519 import X25519_BASE_POINT, x25519, x25519_keypair

__all__ = [
    "ChaCha20Poly1305",
    "SealedBox",
    "chacha20_block",
    "chacha20_xor",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "pbkdf2_sha256",
    "MerkleTree",
    "poly1305_mac",
    "X25519_BASE_POINT",
    "x25519",
    "x25519_keypair",
]
