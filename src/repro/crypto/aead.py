"""ChaCha20-Poly1305 AEAD (RFC 8439, section 2.8) and a password box.

:class:`ChaCha20Poly1305` is the low-level AEAD; :class:`SealedBox` is the
convenience wrapper the persistence layer uses to encrypt nym state under a
user password (PBKDF2 key derivation + random salt/nonce framing).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.chacha20 import chacha20_block, chacha20_xor
from repro.crypto.kdf import pbkdf2_sha256
from repro.crypto.poly1305 import Poly1305, constant_time_equal
from repro.errors import AuthenticationError, CryptoError
from repro.sim.rng import SeededRng


def _pad16_tail(length: int) -> bytes:
    """Zero padding that extends ``length`` bytes to a 16-byte boundary."""
    return b"\x00" * ((16 - length % 16) % 16)


class ChaCha20Poly1305:
    """AEAD cipher: confidentiality + integrity for nym state and cells."""

    KEY_SIZE = 32
    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != self.KEY_SIZE:
            raise CryptoError(f"AEAD key must be {self.KEY_SIZE} bytes, got {len(key)}")
        self._key = key

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        otk = chacha20_block(self._key, 0, nonce)[:32]
        # Stream the aad || ciphertext || lengths framing through the MAC
        # instead of concatenating a copy of the (possibly multi-megabyte)
        # ciphertext just to authenticate it.
        mac = Poly1305(otk)
        mac.update(aad)
        mac.update(_pad16_tail(len(aad)))
        mac.update(ciphertext)
        mac.update(_pad16_tail(len(ciphertext)))
        mac.update(struct.pack("<QQ", len(aad), len(ciphertext)))
        return mac.tag()

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ``ciphertext || 16-byte tag``."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}")
        ciphertext = chacha20_xor(self._key, nonce, plaintext, counter=1)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext."""
        if len(nonce) != self.NONCE_SIZE:
            raise CryptoError(f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}")
        if len(sealed) < self.TAG_SIZE:
            raise AuthenticationError("ciphertext shorter than the AEAD tag")
        ciphertext, tag = sealed[: -self.TAG_SIZE], sealed[-self.TAG_SIZE :]
        expected = self._tag(nonce, ciphertext, aad)
        if not constant_time_equal(tag, expected):
            raise AuthenticationError("AEAD tag verification failed")
        return chacha20_xor(self._key, nonce, ciphertext, counter=1)


@dataclass(frozen=True)
class SealedBlob:
    """Self-describing password-encrypted blob: salt, nonce, ciphertext."""

    salt: bytes
    nonce: bytes
    sealed: bytes

    MAGIC = b"NYMX"

    def to_bytes(self) -> bytes:
        return (
            self.MAGIC
            + struct.pack("<HH", len(self.salt), len(self.nonce))
            + self.salt
            + self.nonce
            + self.sealed
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "SealedBlob":
        if len(data) < 8 or data[:4] != cls.MAGIC:
            raise CryptoError("not a Nymix sealed blob")
        salt_len, nonce_len = struct.unpack("<HH", data[4:8])
        offset = 8
        salt = data[offset : offset + salt_len]
        offset += salt_len
        nonce = data[offset : offset + nonce_len]
        offset += nonce_len
        if len(salt) != salt_len or len(nonce) != nonce_len:
            raise CryptoError("truncated sealed blob header")
        return cls(salt=salt, nonce=nonce, sealed=data[offset:])


class SealedBox:
    """Password-based authenticated encryption for quasi-persistent nyms.

    The Nym Manager uses this to seal compressed VM images before handing
    them to cloud storage: the provider sees only a :class:`SealedBlob`.
    """

    SALT_SIZE = 16
    # Low by production standards, but the KDF cost is simulated separately
    # by the persistence timing model; keeping iterations small keeps the
    # test suite fast while still exercising real PBKDF2.
    PBKDF2_ITERATIONS = 1_000

    def __init__(self, password: str, rng: SeededRng) -> None:
        if not password:
            raise CryptoError("empty password")
        self._password = password
        self._rng = rng

    def seal(self, plaintext: bytes, aad: bytes = b"") -> SealedBlob:
        salt = self._rng.token_bytes(self.SALT_SIZE)
        nonce = self._rng.token_bytes(ChaCha20Poly1305.NONCE_SIZE)
        key = pbkdf2_sha256(
            self._password.encode(), salt, self.PBKDF2_ITERATIONS, ChaCha20Poly1305.KEY_SIZE
        )
        sealed = ChaCha20Poly1305(key).encrypt(nonce, plaintext, aad)
        return SealedBlob(salt=salt, nonce=nonce, sealed=sealed)

    def open(self, blob: SealedBlob, aad: bytes = b"") -> bytes:
        key = pbkdf2_sha256(
            self._password.encode(), blob.salt, self.PBKDF2_ITERATIONS, ChaCha20Poly1305.KEY_SIZE
        )
        return ChaCha20Poly1305(key).decrypt(blob.nonce, blob.sealed, aad)
