"""Key derivation: HKDF (RFC 5869) and PBKDF2 (via hashlib).

HKDF seeds per-hop Tor circuit keys and the deterministic entry-guard
selection described in §3.5 of the paper; PBKDF2 turns nym passwords into
AEAD keys.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError

_HASH_LEN = 32  # SHA-256


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate entropy into a pseudo-random key."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a PRK into ``length`` bytes of key material."""
    if length > 255 * _HASH_LEN:
        raise CryptoError(f"HKDF cannot expand to {length} bytes")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(block) for block in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, salt: bytes, info: bytes, length: int) -> bytes:
    """One-shot HKDF-Extract-then-Expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)


def pbkdf2_sha256(password: bytes, salt: bytes, iterations: int, length: int) -> bytes:
    """PBKDF2-HMAC-SHA256 (delegates to the C implementation in hashlib)."""
    if iterations < 1:
        raise CryptoError(f"PBKDF2 iterations must be >= 1, got {iterations}")
    return hashlib.pbkdf2_hmac("sha256", password, salt, iterations, dklen=length)
