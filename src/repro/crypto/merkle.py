"""Merkle tree over disk blocks.

Section 3.4 of the paper proposes (as future work) verifying every block
loaded from the host OS partition against a well-known Merkle tree, and
shutting down if a modified block is detected.  We implement that feature:
:class:`MerkleTree` commits to a block device's contents and produces /
verifies per-block inclusion proofs, which the union file system's
verified read path consumes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CryptoError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _hash_leaf(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof: sibling hashes from leaf to root plus the index."""

    leaf_index: int
    siblings: Tuple[bytes, ...]  # bottom-up sibling hashes


class MerkleTree:
    """A static Merkle tree committing to an ordered list of blocks."""

    def __init__(self, blocks: Sequence[bytes]) -> None:
        if not blocks:
            raise CryptoError("cannot build a Merkle tree over zero blocks")
        self._leaf_count = len(blocks)
        # levels[0] is the leaf level; levels[-1] is [root].
        levels: List[List[bytes]] = [[_hash_leaf(block) for block in blocks]]
        while len(levels[-1]) > 1:
            current = levels[-1]
            parents = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else left
                parents.append(_hash_node(left, right))
            levels.append(parents)
        self._levels = levels

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    @property
    def leaf_count(self) -> int:
        return self._leaf_count

    def proof(self, leaf_index: int) -> MerkleProof:
        """Build an inclusion proof for leaf ``leaf_index``."""
        if not 0 <= leaf_index < self._leaf_count:
            raise CryptoError(
                f"leaf index {leaf_index} out of range [0, {self._leaf_count})"
            )
        siblings = []
        index = leaf_index
        for level in self._levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index >= len(level):
                sibling_index = index  # odd node pairs with itself
            siblings.append(level[sibling_index])
            index //= 2
        return MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings))

    @staticmethod
    def verify(root: bytes, block: bytes, proof: MerkleProof) -> bool:
        """Check ``block`` against ``root`` using ``proof``."""
        digest = _hash_leaf(block)
        index = proof.leaf_index
        for sibling in proof.siblings:
            if index % 2 == 0:
                digest = _hash_node(digest, sibling)
            else:
                digest = _hash_node(sibling, digest)
            index //= 2
        return digest == root
