"""ChaCha20 stream cipher (RFC 8439, section 2).

Pure-Python implementation used for nym state encryption and for the
layered onion encryption in the Tor simulator.  Matches the RFC 8439 test
vectors (exercised in the test suite).

Beyond the scalar block function there are three fast paths, all
bit-identical to the scalar 20-round function (pinned by the test suite):

* :func:`_chacha20_xor_vectorized` — all of one key's keystream blocks at
  once via numpy uint32 lanes;
* :func:`chacha20_keystream` — raw keystream bytes, which the Tor layer
  caches per hop (this simulator's hop keys are single-use directions with
  a fixed nonce, so the stream never changes);
* :func:`chacha20_combined_keystream` — the XOR of several keys' streams
  computed in one batched dispatch, which collapses whole-onion
  encryption into a single XOR.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from repro.errors import CryptoError

_MASK32 = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def _rotl32(value: int, count: int) -> int:
    value &= _MASK32
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block."""
    if len(key) != 32:
        raise CryptoError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise CryptoError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    if not 0 <= counter <= _MASK32:
        raise CryptoError(f"ChaCha20 counter out of range: {counter}")

    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter)
    state.extend(struct.unpack("<3L", nonce))

    working = state.copy()
    for _ in range(10):  # 20 rounds: 10 column+diagonal double-rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)

    output = [(working[i] + state[i]) & _MASK32 for i in range(16)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, counter: int = 0) -> bytes:
    """Encrypt or decrypt ``data`` (XOR with the ChaCha20 keystream).

    Small inputs use the scalar block function; larger ones a vectorized
    implementation of the same 20-round function that computes all blocks'
    keystreams at once (bit-identical output, checked by the test suite).
    """
    if len(data) > 4 * 64:
        return _chacha20_xor_vectorized(key, nonce, data, counter)
    out = bytearray(len(data))
    for block_index in range(0, len(data), 64):
        keystream = chacha20_block(key, counter + block_index // 64, nonce)
        chunk = data[block_index : block_index + 64]
        for offset, byte in enumerate(chunk):
            out[block_index + offset] = byte ^ keystream[offset]
    return bytes(out)


def _keystream_words_vectorized(
    keys: Sequence[bytes], nonce: bytes, n_blocks: int, counter: int
):
    """20-round keystream for every (key, block) lane at once.

    Returns a numpy uint32 array of shape ``(n_keys, n_blocks, 16)`` whose
    words match :func:`chacha20_block` exactly.
    """
    import numpy as np

    if counter + n_blocks - 1 > _MASK32:
        raise CryptoError("ChaCha20 counter overflow")
    if counter < 0:
        raise CryptoError(f"ChaCha20 counter out of range: {counter}")
    for key in keys:
        if len(key) != 32:
            raise CryptoError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise CryptoError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")

    n_keys = len(keys)
    lanes = n_keys * n_blocks
    state = np.empty((16, lanes), dtype=np.uint32)
    state[0:4] = np.array(_CONSTANTS, dtype=np.uint32)[:, None]
    key_words = np.stack([np.frombuffer(key, dtype="<u4") for key in keys])
    state[4:12] = np.repeat(key_words.T, n_blocks, axis=1)
    counters = np.arange(counter, counter + n_blocks, dtype=np.uint64).astype(np.uint32)
    state[12] = np.tile(counters, n_keys)
    state[13:16] = np.frombuffer(nonce, dtype="<u4")[:, None]

    x = state.copy()

    def rotl(v, c):
        return (v << np.uint32(c)) | (v >> np.uint32(32 - c))

    def quarter(a, b, c, d):
        x[a] += x[b]
        x[d] = rotl(x[d] ^ x[a], 16)
        x[c] += x[d]
        x[b] = rotl(x[b] ^ x[c], 12)
        x[a] += x[b]
        x[d] = rotl(x[d] ^ x[a], 8)
        x[c] += x[d]
        x[b] = rotl(x[b] ^ x[c], 7)

    with np.errstate(over="ignore"):
        for _ in range(10):
            quarter(0, 4, 8, 12)
            quarter(1, 5, 9, 13)
            quarter(2, 6, 10, 14)
            quarter(3, 7, 11, 15)
            quarter(0, 5, 10, 15)
            quarter(1, 6, 11, 12)
            quarter(2, 7, 8, 13)
            quarter(3, 4, 9, 14)
        x += state

    # (16, lanes) words -> (n_keys, n_blocks, 16), block-major per key.
    return x.reshape(16, n_keys, n_blocks).transpose(1, 2, 0)


def _chacha20_xor_vectorized(key: bytes, nonce: bytes, data: bytes, counter: int) -> bytes:
    """All keystream blocks at once via numpy uint32 lanes."""
    import numpy as np

    n_blocks = (len(data) + 63) // 64
    words = _keystream_words_vectorized([key], nonce, n_blocks, counter)
    keystream = words.astype("<u4").tobytes()[: len(data)]
    buffer = np.frombuffer(data, dtype=np.uint8)
    ks = np.frombuffer(keystream, dtype=np.uint8)
    return (buffer ^ ks).tobytes()


def xor_bytes(data: bytes, keystream: bytes) -> bytes:
    """XOR two equal-length byte strings (single big-int op, no numpy)."""
    if len(data) != len(keystream):
        raise CryptoError(
            f"xor_bytes length mismatch: {len(data)} vs {len(keystream)}"
        )
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(keystream, "little")
    ).to_bytes(len(data), "little")


def chacha20_keystream(key: bytes, nonce: bytes, length: int, counter: int = 0) -> bytes:
    """Produce ``length`` bytes of raw keystream (for caching layers)."""
    if length < 0:
        raise CryptoError(f"negative keystream length: {length}")
    if length == 0:
        chacha20_block(key, counter, nonce)  # still validate the inputs
        return b""
    n_blocks = (length + 63) // 64
    if n_blocks <= 4:
        stream = b"".join(
            chacha20_block(key, counter + index, nonce) for index in range(n_blocks)
        )
    else:
        stream = _keystream_words_vectorized([key], nonce, n_blocks, counter).astype(
            "<u4"
        ).tobytes()
    return stream[:length]


def chacha20_keystreams(
    keys: Sequence[bytes], nonce: bytes, length: int, counter: int = 0
) -> List[bytes]:
    """Every key's raw keystream in one batched dispatch (not folded).

    Identical per-key output to calling :func:`chacha20_keystream` once per
    key, but all ``len(keys) * n_blocks`` lanes run through the 20 rounds
    in a single vectorized pass — the mixnet stream cache prefills a whole
    circuit's layer streams with one call.
    """
    if not keys:
        return []
    if length < 0:
        raise CryptoError(f"negative keystream length: {length}")
    n_blocks = (length + 63) // 64
    if length == 0 or len(keys) * n_blocks <= 4:
        return [chacha20_keystream(key, nonce, length, counter) for key in keys]
    words = _keystream_words_vectorized(list(keys), nonce, n_blocks, counter)
    raw = words.astype("<u4").tobytes()
    stride = n_blocks * 64
    return [raw[i * stride : i * stride + length] for i in range(len(keys))]


def chacha20_combined_keystream(
    keys: Sequence[bytes], nonce: bytes, length: int, counter: int = 0
) -> bytes:
    """XOR of every key's keystream — one batched dispatch for all layers.

    XOR-ing data with this combined stream equals applying
    :func:`chacha20_xor` once per key in any order (XOR is associative and
    commutative), which is exactly the onion layering.
    """
    if not keys:
        raise CryptoError("combined keystream needs at least one key")
    if len(keys) == 1 or length * len(keys) <= 4 * 64:
        combined = chacha20_keystream(keys[0], nonce, length, counter)
        for key in keys[1:]:
            combined = xor_bytes(combined, chacha20_keystream(key, nonce, length, counter))
        return combined
    import numpy as np

    n_blocks = (length + 63) // 64
    words = _keystream_words_vectorized(list(keys), nonce, n_blocks, counter)
    folded = np.bitwise_xor.reduce(words, axis=0)
    return folded.astype("<u4").tobytes()[:length]


def chacha20_xor_layers(
    keys: Sequence[bytes], nonce: bytes, data: bytes, counter: int = 0
) -> bytes:
    """Encrypt/decrypt through every layer key at once (bit-identical to
    sequentially applying :func:`chacha20_xor` per key)."""
    if not data:
        chacha20_combined_keystream(keys, nonce, 0, counter)
        return b""
    return xor_bytes(data, chacha20_combined_keystream(keys, nonce, len(data), counter))
