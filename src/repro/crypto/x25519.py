"""X25519 Diffie-Hellman over Curve25519 (RFC 7748).

Used by the Tor simulator's circuit handshake: the client performs an
ntor-style exchange with each relay to derive per-hop onion keys.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import CryptoError
from repro.sim.rng import SeededRng

_P = 2**255 - 19
_A24 = 121665

X25519_BASE_POINT = (9).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise CryptoError(f"X25519 scalar must be 32 bytes, got {len(scalar)}")
    raw = bytearray(scalar)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(raw, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise CryptoError(f"X25519 point must be 32 bytes, got {len(u)}")
    raw = bytearray(u)
    raw[31] &= 127  # mask the high bit per RFC 7748
    return int.from_bytes(raw, "little") % _P


def x25519(scalar: bytes, point: bytes) -> bytes:
    """Scalar multiplication on Curve25519 via the Montgomery ladder."""
    k = _decode_scalar(scalar)
    u = _decode_u(point)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for bit_index in reversed(range(255)):
        bit = (k >> bit_index) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = pow(da + cb, 2, _P)
        z3 = (x1 * pow(da - cb, 2, _P)) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2

    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(32, "little")


def x25519_keypair(rng: SeededRng) -> Tuple[bytes, bytes]:
    """Generate a (private, public) X25519 keypair from the seeded RNG."""
    private = rng.token_bytes(32)
    public = x25519(private, X25519_BASE_POINT)
    return private, public
