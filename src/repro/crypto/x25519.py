"""X25519 Diffie-Hellman over Curve25519 (RFC 7748).

Used by the Tor simulator's circuit handshake: the client performs an
ntor-style exchange with each relay to derive per-hop onion keys.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import CryptoError
from repro.sim.rng import SeededRng

_P = 2**255 - 19
_A24 = 121665

X25519_BASE_POINT = (9).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise CryptoError(f"X25519 scalar must be 32 bytes, got {len(scalar)}")
    raw = bytearray(scalar)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(raw, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise CryptoError(f"X25519 point must be 32 bytes, got {len(u)}")
    raw = bytearray(u)
    raw[31] &= 127  # mask the high bit per RFC 7748
    return int.from_bytes(raw, "little") % _P


def x25519(scalar: bytes, point: bytes) -> bytes:
    """Scalar multiplication on Curve25519 via the Montgomery ladder."""
    k = _decode_scalar(scalar)
    u = _decode_u(point)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for bit_index in reversed(range(255)):
        bit = (k >> bit_index) & 1
        swap ^= bit
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = bit

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = pow(da + cb, 2, _P)
        z3 = (x1 * pow(da - cb, 2, _P)) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2

    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(32, "little")


# -- fixed-base scalar multiplication -------------------------------------------
#
# Keypair generation always multiplies the *same* base point, so the 255
# ladder steps above can be replaced with table lookups.  We work on the
# birationally-equivalent edwards25519 curve (-x^2 + y^2 = 1 + d x^2 y^2,
# extended coordinates) with a radix-16 comb: the clamped scalar is split
# into 64 nibbles c_i and k*B = sum c_i * (16^i * B), where every
# [j * 16^i]B for j in 1..15 comes from a table built once per process.
# The Edwards result maps back to the Montgomery u-coordinate via
# u = (Z + Y) / (Z - Y).  Clamped scalars are in [2^254, 2^255) and
# divisible by 8, so k*B is never the identity or a small-order point and
# the division is always defined.

_D = 37095705934669439343138083508754565189542113879843219016388785533085940283555
_2D = (2 * _D) % _P
_BX = 15112221349535400772501151409588531511454012693041857206046113283949847762202
_BY = 46316835694926478169428394003475163141307993866256225615783033603165251855960

# table[i][j-1] = [j * 16^i]B as a precomputed triple (Y-X, Y+X, 2d*X*Y),
# built lazily on first fixed-base multiply (~1k point ops, one batch
# inversion) and reused for every keypair afterwards.
_COMB_TABLE: list = []

_FIXED_BASE_ENABLED = True


def set_fixed_base_enabled(enabled: bool) -> None:
    """Toggle the precomputed fixed-base path (perfbench baselines)."""
    global _FIXED_BASE_ENABLED
    _FIXED_BASE_ENABLED = bool(enabled)


def fixed_base_enabled() -> bool:
    return _FIXED_BASE_ENABLED


def _ed_add(p1: Tuple[int, int, int, int], p2: Tuple[int, int, int, int]):
    """Unified extended-coordinate addition on edwards25519 (a = -1)."""
    x1, y1, z1, t1 = p1
    x2, y2, z2, t2 = p2
    a = ((y1 - x1) * (y2 - x2)) % _P
    b = ((y1 + x1) * (y2 + x2)) % _P
    c = (t1 * _2D % _P) * t2 % _P
    d = 2 * z1 * z2 % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _build_comb_table() -> None:
    # Projective multiples first, then one batched inversion to affine.
    base = (_BX, _BY, 1, (_BX * _BY) % _P)
    rows = []
    point = base
    for _ in range(64):
        row = [point]
        for _ in range(14):
            row.append(_ed_add(row[-1], point))
        rows.append(row)
        point = _ed_add(row[-1], point)  # 16^(i+1) * B

    # Montgomery's trick: invert all 960 Z coordinates at once.
    flat = [pt for row in rows for pt in row]
    prefix = [1] * (len(flat) + 1)
    for i, pt in enumerate(flat):
        prefix[i + 1] = prefix[i] * pt[2] % _P
    inv = pow(prefix[-1], _P - 2, _P)
    z_invs = [0] * len(flat)
    for i in range(len(flat) - 1, -1, -1):
        z_invs[i] = prefix[i] * inv % _P
        inv = inv * flat[i][2] % _P

    for i, pt in enumerate(flat):
        x = pt[0] * z_invs[i] % _P
        y = pt[1] * z_invs[i] % _P
        _COMB_TABLE.append(((y - x) % _P, (y + x) % _P, x * y % _P * _2D % _P))


def _ed_madd(p1: Tuple[int, int, int, int], idx: int):
    """Mixed addition: extended point + precomputed affine triple."""
    x1, y1, z1, t1 = p1
    ymx, ypx, xy2d = _COMB_TABLE[idx]
    a = ((y1 - x1) * ymx) % _P
    b = ((y1 + x1) * ypx) % _P
    c = (t1 * xy2d) % _P
    d = 2 * z1 % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def x25519_base(scalar: bytes) -> bytes:
    """k * basepoint via the precomputed edwards25519 comb table."""
    if not _COMB_TABLE:
        _build_comb_table()
    k = _decode_scalar(scalar)
    acc = (0, 1, 1, 0)  # identity; the unified formulas handle it
    for i in range(64):
        nibble = (k >> (4 * i)) & 15
        if nibble:
            acc = _ed_madd(acc, i * 15 + nibble - 1)
    _, y, z, _ = acc
    u = (z + y) * pow(z - y, _P - 2, _P) % _P
    return u.to_bytes(32, "little")


def x25519_keypair(rng: SeededRng) -> Tuple[bytes, bytes]:
    """Generate a (private, public) X25519 keypair from the seeded RNG."""
    private = rng.token_bytes(32)
    if _FIXED_BASE_ENABLED:
        public = x25519_base(private)
    else:
        public = x25519(private, X25519_BASE_POINT)
    return private, public
