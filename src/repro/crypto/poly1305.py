"""Poly1305 one-time authenticator (RFC 8439, section 2.5).

The core is block-batched: instead of one 130-bit modular reduction per
16-byte block (the textbook Horner loop), whole batches of up to
``_BATCH_BLOCKS`` blocks are absorbed with precomputed powers of ``r`` and
a single reduction per batch.  Power tables are cached per clamped ``r``
at module level, so repeated MACs under the same one-time key (the mixnet
wraps the same per-hop keys packet after packet) pay the r^2..r^n
precomputation once, not per message.

Large inputs additionally take a vectorized path: blocks are split into
five 26-bit limbs (the classic radix-2^26 representation), the whole
batch's block x power products collapse into one 5x5 uint64 matrix
product, and the exact integer sum is reassembled from 25 limb-pair
totals — still a single modular reduction per batch.  All paths are exact
integer arithmetic, so tags are bit-identical to the straight per-block
evaluation — the test suite pins all of them against each other and
against the RFC vectors.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import CryptoError

try:  # optional acceleration; the scalar batch path is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the environment
    _np = None

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
_PAD_BIT = 1 << 128  # the 0x01 byte appended to every full 16-byte block
_M26 = (1 << 26) - 1

#: Widest batch absorbed per modular reduction (and power-table depth).
#: Each limb-pair dot product sums ``batch`` values < 2^52, so anything
#: up to 2^12 blocks fits uint64; 512 keeps the table build cheap.
_BATCH_BLOCKS = 512
#: Below this many bytes the plain Horner loop wins (no table lookup).
_BATCH_THRESHOLD_BYTES = 512
#: At or above this many bytes the limb-matrix path beats the scalar batch.
_VECTOR_THRESHOLD_BYTES = 1024
#: Bound on the per-``r`` power-table cache (distinct one-time keys seen).
_POWER_CACHE_MAX = 256


class _PowerTable:
    """Powers ``[r^1, r^2, ...]`` of one clamped ``r``, grown on demand.

    Also carries the radix-2^26 limb decomposition of those powers as a
    ``(n, 5)`` uint64 array for the vectorized absorb path.
    """

    __slots__ = ("powers", "_limbs")

    def __init__(self, r: int) -> None:
        self.powers: List[int] = [r % _P]
        self._limbs = None

    def extend_to(self, n: int) -> List[int]:
        powers = self.powers
        if len(powers) < n:
            r = self.powers[0]
            acc = powers[-1]
            for _ in range(n - len(powers)):
                acc = (acc * r) % _P
                powers.append(acc)
        return powers

    def limbs(self, n: int):
        """``(n, 5)`` uint64 array: row ``i`` holds the limbs of ``r^(i+1)``."""
        if self._limbs is None or len(self._limbs) < n:
            powers = self.extend_to(n)
            arr = _np.empty((n, 5), dtype=_np.uint64)
            for i in range(n):
                p = powers[i]
                arr[i, 0] = p & _M26
                arr[i, 1] = (p >> 26) & _M26
                arr[i, 2] = (p >> 52) & _M26
                arr[i, 3] = (p >> 78) & _M26
                arr[i, 4] = p >> 104
            self._limbs = arr
        return self._limbs[:n]


_POWER_CACHE: Dict[int, _PowerTable] = {}


def _power_table(r: int) -> _PowerTable:
    table = _POWER_CACHE.get(r)
    if table is None:
        if len(_POWER_CACHE) >= _POWER_CACHE_MAX:
            _POWER_CACHE.clear()
        table = _PowerTable(r)
        _POWER_CACHE[r] = table
    return table


class Poly1305:
    """Incremental Poly1305: ``update()`` in any chunking, then ``tag()``.

    Streaming avoids concatenating multi-megabyte MAC inputs (the AEAD's
    aad || ciphertext || lengths framing) just to authenticate them.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise CryptoError(f"Poly1305 key must be 32 bytes, got {len(key)}")
        self._r = int.from_bytes(key[:16], "little") & _R_CLAMP
        self._s = int.from_bytes(key[16:], "little")
        self._acc = 0
        self._tail = b""
        self._table: Optional[_PowerTable] = None
        self._finalized = False

    # -- absorbing ---------------------------------------------------------

    def update(self, data: bytes) -> "Poly1305":
        if self._finalized:
            raise CryptoError("Poly1305 tag already produced")
        if self._tail:
            data = self._tail + data
        whole = len(data) - (len(data) % 16)
        self._tail = data[whole:]
        if whole:
            self._absorb_blocks(data[:whole])
        return self

    def _absorb_blocks(self, data: bytes) -> None:
        """Absorb ``data`` (a multiple of 16 bytes) into the accumulator."""
        if _np is not None and len(data) >= _VECTOR_THRESHOLD_BYTES:
            self._absorb_blocks_limbs(data)
            return
        r = self._r
        acc = self._acc
        offset = 0
        n_blocks = len(data) // 16
        if len(data) >= _BATCH_THRESHOLD_BYTES:
            if self._table is None:
                self._table = _power_table(r)
            while n_blocks:
                batch = min(n_blocks, _BATCH_BLOCKS)
                powers = self._table.extend_to(batch)
                # acc_new = acc*r^K + b_1*r^K + b_2*r^(K-1) + ... + b_K*r^1
                total = 0
                for exponent in range(batch - 1, -1, -1):
                    block = (
                        int.from_bytes(data[offset : offset + 16], "little")
                        | _PAD_BIT
                    )
                    total += block * powers[exponent]
                    offset += 16
                acc = (acc * powers[batch - 1] + total) % _P
                n_blocks -= batch
        for _ in range(n_blocks):
            block = int.from_bytes(data[offset : offset + 16], "little") | _PAD_BIT
            acc = ((acc + block) * r) % _P
            offset += 16
        self._acc = acc

    def _absorb_blocks_limbs(self, data: bytes) -> None:
        """Vectorized absorb: one 5x5 limb matmul + one reduction per batch.

        For a batch of K blocks,
        ``acc_new = (acc*r^K + sum_i block_i * r^(K-i)) mod P``.  Blocks
        and powers are split into five 26-bit limbs; the cross sum becomes
        ``S = B^T @ W`` where ``B`` is the (K, 5) block-limb array and
        ``W`` the matching reversed power limbs, and the exact integer is
        ``sum S[a][b] << 26*(a+b)``.  Every pair product is < 2^52 and K
        <= 2^12, so the uint64 sums cannot overflow.
        """
        if self._table is None:
            self._table = _power_table(self._r)
        table = self._table
        acc = self._acc
        words = _np.frombuffer(data, dtype="<u8").reshape(-1, 2)
        lo = words[:, 0]
        hi = words[:, 1]
        m26 = _np.uint64(_M26)
        blimbs = _np.empty((len(words), 5), dtype=_np.uint64)
        blimbs[:, 0] = lo & m26
        blimbs[:, 1] = (lo >> _np.uint64(26)) & m26
        blimbs[:, 2] = ((lo >> _np.uint64(52)) | (hi << _np.uint64(12))) & m26
        blimbs[:, 3] = (hi >> _np.uint64(14)) & m26
        # bits 104.. plus the 2^128 pad bit (bit 24 of this limb)
        blimbs[:, 4] = (hi >> _np.uint64(40)) | _np.uint64(1 << 24)
        n_blocks = len(words)
        pos = 0
        while pos < n_blocks:
            batch = min(n_blocks - pos, _BATCH_BLOCKS)
            # Powers r^batch .. r^1: ascending table rows 0..batch-1 reversed.
            weights = table.limbs(batch)[::-1]
            pair_sums = blimbs[pos : pos + batch].T @ weights
            total = 0
            for a in range(5):
                row = pair_sums[a]
                for b in range(5):
                    total += int(row[b]) << (26 * (a + b))
            acc = (acc * table.powers[batch - 1] + total) % _P
            pos += batch
        self._acc = acc

    # -- finalizing --------------------------------------------------------

    def tag(self) -> bytes:
        """Produce the 16-byte tag.  The instance is one-shot."""
        if self._finalized:
            raise CryptoError("Poly1305 tag already produced")
        self._finalized = True
        acc = self._acc
        if self._tail:
            block = int.from_bytes(self._tail + b"\x01", "little")
            acc = ((acc + block) * self._r) % _P
        result = (acc + self._s) & ((1 << 128) - 1)
        return result.to_bytes(16, "little")


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    return Poly1305(key).update(message).tag()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length- and content-compare without early exit."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
