"""Poly1305 one-time authenticator (RFC 8439, section 2.5).

The core is block-batched: instead of one 130-bit modular reduction per
16-byte block (the textbook Horner loop), whole batches of ``_BATCH_BLOCKS``
blocks are absorbed with precomputed powers of ``r`` and a single reduction
per batch.  The arithmetic is exact, so tags are bit-identical to the
straight per-block evaluation — the test suite pins both against each other
and against the RFC vectors.
"""

from __future__ import annotations

from typing import List

from repro.errors import CryptoError

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
_PAD_BIT = 1 << 128  # the 0x01 byte appended to every full 16-byte block

#: Blocks absorbed per modular reduction in the batched core.
_BATCH_BLOCKS = 32
#: Below this many bytes the plain loop wins (no power-table setup).
_BATCH_THRESHOLD_BYTES = 512


class Poly1305:
    """Incremental Poly1305: ``update()`` in any chunking, then ``tag()``.

    Streaming avoids concatenating multi-megabyte MAC inputs (the AEAD's
    aad || ciphertext || lengths framing) just to authenticate them.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise CryptoError(f"Poly1305 key must be 32 bytes, got {len(key)}")
        self._r = int.from_bytes(key[:16], "little") & _R_CLAMP
        self._s = int.from_bytes(key[16:], "little")
        self._acc = 0
        self._tail = b""
        self._powers: List[int] = []  # lazily built [r^1, ..., r^_BATCH_BLOCKS]
        self._finalized = False

    # -- absorbing ---------------------------------------------------------

    def update(self, data: bytes) -> "Poly1305":
        if self._finalized:
            raise CryptoError("Poly1305 tag already produced")
        if self._tail:
            data = self._tail + data
        whole = len(data) - (len(data) % 16)
        self._tail = data[whole:]
        if whole:
            self._absorb_blocks(data[:whole])
        return self

    def _absorb_blocks(self, data: bytes) -> None:
        """Absorb ``data`` (a multiple of 16 bytes) into the accumulator."""
        r = self._r
        acc = self._acc
        offset = 0
        n_blocks = len(data) // 16
        if len(data) >= _BATCH_THRESHOLD_BYTES:
            if not self._powers:
                powers = [r % _P]
                for _ in range(_BATCH_BLOCKS - 1):
                    powers.append((powers[-1] * r) % _P)
                self._powers = powers
            powers = self._powers
            batch = _BATCH_BLOCKS
            r_batch = powers[batch - 1]
            while n_blocks >= batch:
                # acc_new = acc*r^K + b_1*r^K + b_2*r^(K-1) + ... + b_K*r^1
                total = 0
                for exponent in range(batch - 1, -1, -1):
                    block = (
                        int.from_bytes(data[offset : offset + 16], "little")
                        | _PAD_BIT
                    )
                    total += block * powers[exponent]
                    offset += 16
                acc = (acc * r_batch + total) % _P
                n_blocks -= batch
        for _ in range(n_blocks):
            block = int.from_bytes(data[offset : offset + 16], "little") | _PAD_BIT
            acc = ((acc + block) * r) % _P
            offset += 16
        self._acc = acc

    # -- finalizing --------------------------------------------------------

    def tag(self) -> bytes:
        """Produce the 16-byte tag.  The instance is one-shot."""
        if self._finalized:
            raise CryptoError("Poly1305 tag already produced")
        self._finalized = True
        acc = self._acc
        if self._tail:
            block = int.from_bytes(self._tail + b"\x01", "little")
            acc = ((acc + block) * self._r) % _P
        result = (acc + self._s) & ((1 << 128) - 1)
        return result.to_bytes(16, "little")


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under a 32-byte key."""
    return Poly1305(key).update(message).tag()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Length- and content-compare without early exit."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
