"""The tagged microbenchmark registry behind ``repro bench``.

Each bench measures a hot path in real wall-clock time; where a frozen
seed implementation exists (:mod:`repro.perfbench.legacy`), it runs in the
same process right after the live code so the recorded speedup compares
the same machine, same interpreter, same inputs.

Tags group benches for ``repro bench --tag``:

* ``memory``  — GuestMemory churn and KSM accounting
* ``crypto``  — ChaCha20 / Poly1305 / onion layering
* ``sim``     — event queue machinery
* ``scenario``— end-to-end figure workloads under wall-clock timing
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.perfbench.harness import (
    FULL_BUDGET_S,
    QUICK_BUDGET_S,
    BenchResult,
    measure,
)

MIB = 1024 * 1024


@dataclass(frozen=True)
class Bench:
    """One registered microbenchmark."""

    name: str
    tags: List[str]
    description: str
    run: Callable[[bool], BenchResult]


def _budget(quick: bool) -> float:
    return QUICK_BUDGET_S if quick else FULL_BUDGET_S


# -- memory -----------------------------------------------------------------


def _bench_memory_churn(quick: bool) -> BenchResult:
    """A nym lifetime's worth of page churn: map, dirty, wipe."""
    from repro.memory.pages import GuestMemory
    from repro.perfbench.legacy import LegacyGuestMemory

    guest_bytes = (64 if quick else 512) * MIB
    dirty_steps = 32

    def churn(cls) -> None:
        guest = cls("bench", guest_bytes)
        guest.map_image("nymix-image", guest_bytes // 4)
        step = guest_bytes // 2 // dirty_steps
        for _ in range(dirty_steps):
            guest.dirty(step)
        guest.stats()
        guest.secure_erase()

    budget = _budget(quick)
    iterations, seconds = measure(lambda: churn(GuestMemory), budget)
    base_iters, base_seconds = measure(lambda: churn(LegacyGuestMemory), budget)
    return BenchResult(
        name="memory_churn",
        tags=["memory"],
        unit="churn",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"map+dirty+erase a {guest_bytes // MIB} MiB guest in "
            f"{dirty_steps} steps; seed keeps one dict entry per page"
        ),
        extra={"guest_mib": guest_bytes // MIB, "dirty_steps": dirty_steps},
    )


def _ksm_scenario(quick: bool, cls):
    """Build the shared fig3-style guest set used by the KSM stats bench."""
    guests = []
    n_guests = 2 if quick else 4
    guest_bytes = (32 if quick else 128) * MIB
    for index in range(n_guests):
        guest = cls(f"bench-{index}", guest_bytes)
        guest.map_image("nymix-image", 24 * MIB if not quick else 8 * MIB)
        guest.dirty(guest_bytes // 8)
        guests.append(guest)
    return guests


def _bench_ksm_stats(quick: bool) -> BenchResult:
    """The per-wakeup ksmd accounting when guest memory hasn't changed."""
    from repro.memory.ksm import Ksm
    from repro.memory.pages import GuestMemory
    from repro.perfbench.legacy import LegacyGuestMemory, legacy_ksm_stats

    guests = _ksm_scenario(quick, GuestMemory)
    ksm = Ksm(enabled=True)
    for guest in guests:
        ksm.register(guest)
    ksm.run_to_completion()

    legacy_guests = _ksm_scenario(quick, LegacyGuestMemory)
    coverage = ksm.coverage

    budget = _budget(quick)
    iterations, seconds = measure(ksm.stats, budget)
    base_iters, base_seconds = measure(
        lambda: legacy_ksm_stats(legacy_guests, coverage), budget
    )
    return BenchResult(
        name="ksm_stats",
        tags=["memory", "ksm"],
        unit="stats",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"steady-state stats() over {len(guests)} guests; seed rescans "
            "every page group per call, live code serves the epoch-cached index"
        ),
        extra={"guests": len(guests), "total_pages": ksm.total_guest_pages},
    )


# -- crypto -----------------------------------------------------------------


def _bench_onion_throughput(quick: bool) -> BenchResult:
    """Full onion round trips through a built 3-hop circuit."""
    from repro.anonymizers.tor.circuit import Circuit
    from repro.anonymizers.tor.relay import Relay
    from repro.net.addresses import Ipv4Address
    from repro.perfbench.legacy import legacy_onion_round_trip
    from repro.sim.clock import Timeline
    from repro.sim.rng import SeededRng

    timeline = Timeline(seed=1234, observability=False)
    rng = SeededRng(1234)
    relays = [
        Relay(
            f"bench{i}",
            Ipv4Address.parse(f"10.9.0.{i + 1}"),
            10e6,
            frozenset({"Guard", "Exit"}),
            rng.fork(f"bench{i}"),
        )
        for i in range(3)
    ]
    circuit = Circuit(timeline, rng)
    circuit.build(relays)
    cell = bytes(range(256)) * 2  # one 512 B payload

    def round_trip() -> bytes:
        onion = circuit.onion_encrypt(cell)
        plain = circuit.relay_forward(onion)
        back = circuit.relay_backward(plain)
        return circuit.onion_decrypt(back)

    forward_keys = [hop.forward_key for hop in circuit._hops]
    backward_keys = [hop.backward_key for hop in circuit._hops]
    nonce = b"\x00" * 12
    assert round_trip() == cell
    assert legacy_onion_round_trip(forward_keys, backward_keys, nonce, cell) == cell

    budget = _budget(quick)
    iterations, seconds = measure(round_trip, budget)
    base_iters, base_seconds = measure(
        lambda: legacy_onion_round_trip(forward_keys, backward_keys, nonce, cell),
        budget,
    )
    return BenchResult(
        name="onion_throughput",
        tags=["crypto", "tor"],
        unit="cell",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            "512 B cell, 3 hops, both directions; seed recomputes every "
            "layer's keystream, live code XORs against cached streams"
        ),
        extra={"hops": len(relays), "cell_bytes": len(cell)},
    )


def _bench_poly1305(quick: bool) -> BenchResult:
    """One-shot MAC over a large message (the AEAD tag path)."""
    from repro.crypto.poly1305 import poly1305_mac
    from repro.perfbench.legacy import legacy_poly1305_mac

    key = bytes(range(32))
    message = bytes(range(256)) * ((128 if quick else 1024) * 4)
    assert poly1305_mac(key, message) == legacy_poly1305_mac(key, message)

    budget = _budget(quick)
    iterations, seconds = measure(lambda: poly1305_mac(key, message), budget)
    base_iters, base_seconds = measure(
        lambda: legacy_poly1305_mac(key, message), budget
    )
    return BenchResult(
        name="poly1305",
        tags=["crypto"],
        unit="byte",
        work_per_iteration=len(message),
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"{len(message) // 1024} KiB message; seed reduces mod 2^130-5 "
            "per 16 B block, live code once per 32-block batch"
        ),
        extra={"message_bytes": len(message)},
    )


def _bench_chacha20_xor(quick: bool) -> BenchResult:
    """Bulk stream encryption (nym state sealing, cell payloads)."""
    from repro.crypto.chacha20 import chacha20_block, chacha20_xor, xor_bytes

    key = bytes(range(32))
    nonce = bytes(range(12))
    data = bytes(range(256)) * ((32 if quick else 256) * 4)

    def scalar_xor() -> bytes:
        n_blocks = (len(data) + 63) // 64
        stream = b"".join(chacha20_block(key, i, nonce) for i in range(n_blocks))
        return xor_bytes(data, stream[: len(data)])

    assert scalar_xor() == chacha20_xor(key, nonce, data)

    budget = _budget(quick)
    iterations, seconds = measure(lambda: chacha20_xor(key, nonce, data), budget)
    base_iters, base_seconds = measure(scalar_xor, budget)
    return BenchResult(
        name="chacha20_xor",
        tags=["crypto"],
        unit="byte",
        work_per_iteration=len(data),
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"{len(data) // 1024} KiB buffer; baseline is the scalar "
            "block-at-a-time 20-round function"
        ),
        extra={"data_bytes": len(data)},
    )


def _bench_mixnet_packet(quick: bool) -> BenchResult:
    """Packets through a 3-layer mix: build, peel per hop, open.

    Live path: the sender reuses one cached ephemeral exchange per node
    and every node memoizes its half; baseline runs the same code inside
    :func:`seed_mixnet_mode` — a fresh x25519 exchange per layer per
    packet on both ends.
    """
    from repro.mixnet.packet import build_packet, open_body
    from repro.mixnet.topology import MixTopology
    from repro.perfbench.legacy import seed_mixnet_mode
    from repro.sim.rng import SeededRng

    topology = MixTopology(SeededRng(77), layers=3, nodes_per_layer=2)
    payload = bytes(range(256)) * 2  # one 512 B application payload

    def make_pump(rng: SeededRng):
        path = topology.sample_path(rng)

        def pump() -> bytes:
            packet = build_packet(rng, path, payload)
            for node in path:
                _, packet = node.process(packet)
            return open_body(packet)

        return pump

    pump = make_pump(SeededRng(78))
    assert pump() == payload

    budget = _budget(quick)
    iterations, seconds = measure(pump, budget)
    with seed_mixnet_mode():
        seed_pump = make_pump(SeededRng(79))
        assert seed_pump() == payload
        base_iters, base_seconds = measure(seed_pump, budget)
    return BenchResult(
        name="mixnet_packet",
        tags=["crypto", "mixnet"],
        unit="packet",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            "512 B payload, 3 layers: wrap + 3 peels + open; seed runs a "
            "fresh x25519 exchange per layer on sender and node alike"
        ),
        extra={"layers": 3, "payload_bytes": len(payload)},
    )


# -- sim --------------------------------------------------------------------


def _bench_event_queue_load(quick: bool) -> BenchResult:
    """Schedule/cancel/drain churn with len() polling between cancels."""
    from repro.sim.clock import Clock, EventQueue

    n_events = 500 if quick else 5_000

    def churn() -> None:
        clock = Clock()
        queue = EventQueue(clock)
        events = [queue.schedule_in(float(i + 1), lambda: None) for i in range(n_events)]
        for index, event in enumerate(events):
            if index % 2:
                event.cancel()
                len(queue)  # the scheduler polls queue depth after cancels
        queue.run_all()

    budget = _budget(quick)
    iterations, seconds = measure(churn, budget)
    return BenchResult(
        name="event_queue_load",
        tags=["sim"],
        unit="churn",
        iterations=iterations,
        seconds=seconds,
        notes=(
            f"schedule {n_events}, cancel half with len() polls, drain; "
            "tombstone compaction keeps cancelled events from pinning the heap"
        ),
        extra={"events": n_events},
    )


# -- scenarios --------------------------------------------------------------


def _make_manager(seed: int):
    from repro.core import NymManager, NymixConfig

    return NymManager(NymixConfig(seed=seed))


def _bench_fig3_scenario(quick: bool) -> BenchResult:
    """Wall-clock cost of the Figure 3 memory-experiment measurement loop."""
    from repro.workloads.browsing import run_memory_experiment_step

    nyms = 1 if quick else 3
    counter = [0]

    def scenario() -> None:
        counter[0] += 1
        manager = _make_manager(seed=counter[0])
        for index in range(nyms):
            run_memory_experiment_step(manager, index)

    budget = _budget(quick)
    iterations, seconds = measure(scenario, budget, min_iterations=2)
    return BenchResult(
        name="fig3_scenario",
        tags=["scenario", "memory"],
        unit="run",
        iterations=iterations,
        seconds=seconds,
        notes=f"fresh manager, {nyms} nyms: launch, measure, browse, re-measure",
        extra={"nyms": nyms},
    )


def _bench_nym_lifecycle(quick: bool) -> BenchResult:
    """Create, browse, and discard one nym on a shared manager."""
    manager = _make_manager(seed=7)
    counter = [0]

    def lifecycle() -> None:
        counter[0] += 1
        nymbox = manager.create_nym(name=f"bench-{counter[0]}")
        manager.timed_browse(nymbox, "bbc.co.uk")
        manager.discard_nym(nymbox)

    for _ in range(2 if quick else 8):  # warm the manager's launch caches
        lifecycle()
    budget = _budget(quick)
    iterations, seconds = measure(lifecycle, budget, min_iterations=2)
    return BenchResult(
        name="nym_lifecycle",
        tags=["scenario"],
        unit="nym",
        iterations=iterations,
        seconds=seconds,
        notes="create_nym + one page load + discard_nym on a warm manager",
    )


def _bench_content_draw(quick: bool) -> BenchResult:
    """Bulk incompressible-content generation: the browse-path hot loop.

    Profiling the flash-clone lifecycle shows ~80% of a warm
    create/browse/discard sits in ``SeededRng.content_bytes`` filling
    the browser cache (one ~717 KiB incompressible draw per cached MiB).
    Live path: the vectorized numpy MT19937 mirror — bit-identical bytes
    and stream position to the seed draw.  Baseline: the seed
    pure-python ``random.Random.randbytes`` inside
    :func:`seed_content_mode`.
    """
    from repro.perfbench.legacy import seed_content_mode
    from repro.sim.rng import SeededRng

    # The browser cache chunk: int(1 MiB * 0.7) incompressible bytes.
    chunk = int(MIB * 0.7)
    draws = 2 if quick else 8
    rng = SeededRng(23)

    def draw() -> None:
        for _ in range(draws):
            rng.content_bytes(chunk)

    budget = _budget(quick)
    iterations, seconds = measure(draw, budget, min_iterations=2)
    with seed_content_mode():
        base_iters, base_seconds = measure(draw, budget, min_iterations=2)
    return BenchResult(
        name="content_draw",
        tags=["memory", "content"],
        unit="draw",
        iterations=iterations * draws,
        seconds=seconds,
        baseline_iterations=base_iters * draws,
        baseline_seconds=base_seconds,
        notes=(
            f"{draws}x {chunk} B incompressible cache-content draws per "
            "round; seed renders the byte stream through pure-python "
            "getrandbits, live mirrors the identical MT19937 stream "
            "through numpy"
        ),
        extra={"chunk_bytes": chunk, "draws_per_round": draws},
    )


def _bench_nym_launch(quick: bool) -> BenchResult:
    """Steady-state create/discard throughput on a warm manager.

    Live path: flash-cloned nymboxes (zygote memory templates, shared
    mount layers) with precomputed-base keygen and warm ntor caches.
    Baseline: the same manager code with ``flash_clone=False`` inside
    :func:`seed_launch_mode` — cold boots, ladder keygen, no handshake
    caches, and the seed O(N) accounting sums.
    """
    from repro.core import NymManager, NymixConfig
    from repro.perfbench.legacy import seed_launch_mode

    warmup = 8 if quick else 40

    def make_loop(flash_clone: bool, warm: int):
        manager = NymManager(NymixConfig(seed=11, flash_clone=flash_clone))
        for _ in range(warm):
            manager.discard_nym(manager.create_nym())

        def launch() -> None:
            manager.discard_nym(manager.create_nym())

        return launch

    budget = _budget(quick)
    # The live loop warms deeper: cache fill (one keygen per distinct
    # relay) is a one-time cost, and this bench measures steady state.
    # The baseline has no caches, so its steady state needs no fill.
    launch = make_loop(flash_clone=True, warm=warmup)
    iterations, seconds = measure(launch, budget, min_iterations=2)
    with seed_launch_mode():
        seed_launch = make_loop(flash_clone=False, warm=2)
        base_iters, base_seconds = measure(seed_launch, budget, min_iterations=2)
    return BenchResult(
        name="nym_launch",
        tags=["scenario", "launch"],
        unit="launch",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            "create_nym + discard_nym on a warm manager; seed cold-boots "
            "both VMs and runs full ntor handshakes per circuit hop"
        ),
        extra={"warmup_launches": warmup},
    )


def _bench_fleet_arrival(quick: bool) -> BenchResult:
    """Multi-host placement throughput: nymboxes arriving across a fleet.

    Live path: every host hypervisor flash-clones from its zygote
    template, accounting is O(Δ), and the whole arrival stream admits
    through one wave-batched :meth:`Fleet.place_many`.  Baseline:
    ``flash_clone=False`` fleets placing one arrival at a time inside
    :func:`seed_admission_mode` — per-arrival host-list rebuilds and
    seed accounting sums (crypto is untouched — fleet placement does not
    build circuits).
    """
    from repro.fleet import Fleet
    from repro.tenancy.policy import FleetPolicies
    from repro.perfbench.legacy import seed_admission_mode
    from repro.sim.clock import Timeline
    from repro.workloads.fleet import fleet_workload

    hosts = 2 if quick else 4
    arrivals = 8 if quick else 24

    def make_arrival(flash_clone: bool, batched: bool):
        def arrival() -> None:
            timeline = Timeline(seed=5, observability=False)
            fleet = Fleet(
                timeline,
                hosts=hosts,
                policies=FleetPolicies(placement="ksm-aware"),
                flash_clone=flash_clone,
            )
            workload = fleet_workload(timeline.fork_rng("bench.workload"), arrivals)
            if batched:
                fleet.place_many(workload)
            else:
                for item in workload:
                    fleet.place(item.name, item.image_id)
            fleet.settle_ksm()

        return arrival

    budget = _budget(quick)
    arrival = make_arrival(flash_clone=True, batched=True)
    arrival()  # warm per-process state before timing
    iterations, seconds = measure(arrival, budget, min_iterations=2)
    with seed_admission_mode():
        seed_arrival = make_arrival(flash_clone=False, batched=False)
        base_iters, base_seconds = measure(seed_arrival, budget, min_iterations=2)
    return BenchResult(
        name="fleet_arrival",
        tags=["scenario", "fleet"],
        unit="wave",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"{arrivals} nymbox arrivals across {hosts} hosts with the "
            "ksm-aware policy, then settle_ksm; live admits the wave "
            "through place_many, seed cold-boots every placement and "
            "re-derives admission per arrival with seed accounting"
        ),
        extra={"hosts": hosts, "arrivals": arrivals},
    )


def _bench_fleet_wave(quick: bool) -> BenchResult:
    """Wave admission at fleet scale: one big arrival burst, many hosts.

    Isolates the admission machinery itself — flash-cloning is on for
    *both* sides, so the speedup is wave planning + vectorized admission
    + token-cached accounting against the seed per-arrival host-list
    rebuild (:func:`seed_admission_mode`), not cloning.
    """
    from repro.fleet import Fleet
    from repro.tenancy.policy import FleetPolicies
    from repro.perfbench.legacy import seed_admission_mode
    from repro.sim.clock import Timeline
    from repro.workloads.fleet import fleet_workload

    hosts = 4 if quick else 16
    arrivals = 32 if quick else 256

    def make_wave(batched: bool):
        def wave() -> None:
            timeline = Timeline(seed=11, observability=False)
            fleet = Fleet(
                timeline,
                hosts=hosts,
                policies=FleetPolicies(placement="ksm-aware"),
                flash_clone=True,
            )
            workload = fleet_workload(timeline.fork_rng("bench.workload"), arrivals)
            if batched:
                fleet.place_many(workload)
            else:
                for item in workload:
                    fleet.place(item.name, item.image_id)
            fleet.settle_ksm()
            fleet.stats()

        return wave

    budget = _budget(quick)
    wave = make_wave(batched=True)
    wave()  # warm per-process state (zygote templates) before timing
    iterations, seconds = measure(wave, budget, min_iterations=2)
    with seed_admission_mode():
        seed_wave = make_wave(batched=False)
        base_iters, base_seconds = measure(seed_wave, budget, min_iterations=2)
    return BenchResult(
        name="fleet_wave",
        tags=["scenario", "fleet"],
        unit="wave",
        iterations=iterations,
        seconds=seconds,
        baseline_iterations=base_iters,
        baseline_seconds=base_seconds,
        notes=(
            f"{arrivals} simultaneous arrivals across {hosts} hosts, "
            "ksm-aware, flash-clone on both sides: place_many wave "
            "planning vs seed per-arrival admission (host-list rebuilds "
            "+ seed accounting sums), then settle_ksm + stats"
        ),
        extra={"hosts": hosts, "arrivals": arrivals},
    )


def _bench_fleet_shard(quick: bool) -> BenchResult:
    """The sharded scale path end to end: epoch barriers + streamed spools.

    Measures whole sharded runs — arrival placement across shard
    timelines, barrier merges, and every journal streamed to a spool on
    disk — the configuration the scale-smoke CI gate and the
    BENCH_fleet scale trajectory run.  No seed counterpart exists (the
    seed code has no sharded path), so only the live rate is recorded.
    On multi-core machines the serial run is re-measured against a
    multiprocess (``procs``) run of the same seed and the wall-clock
    ratio is recorded in ``extra`` — never gated here, because on
    single-core runners spawn overhead legitimately makes the parallel
    run slower (the byte-identity gate lives in the scale-smoke CI job
    and tests/test_fleet_parallel.py, and holds on any core count).
    """
    import os as _os
    import shutil
    import tempfile
    import time as _time

    from repro.fleet.shard import ShardConfig, run_sharded_fleet

    shards = 2 if quick else 4
    nyms = 60 if quick else 400
    config = ShardConfig(
        seed=11, shards=shards, hosts_per_shard=4, nyms=nyms, epoch_s=30.0
    )

    def run(procs: int = 1) -> None:
        spool_dir = tempfile.mkdtemp(prefix="bench-shard-")
        try:
            run_sharded_fleet(config, spool_dir, procs=procs)
        finally:
            shutil.rmtree(spool_dir, ignore_errors=True)

    budget = _budget(quick)
    run()  # warm per-process state (zygote templates) before timing
    iterations, seconds = measure(run, budget, min_iterations=2)
    cpu_count = _os.cpu_count() or 1
    extra = {
        "shards": shards,
        "nyms": nyms,
        "epoch_s": config.epoch_s,
        "cpu_count": cpu_count,
        "procs": 1,
    }
    if cpu_count > 1 and not quick:
        procs = min(cpu_count, shards)
        start = _time.perf_counter()
        run(procs=procs)
        parallel_wall = _time.perf_counter() - start
        serial_wall = seconds / iterations
        extra.update(
            {
                "procs": procs,
                "parallel_wall_seconds": round(parallel_wall, 4),
                "parallel_speedup": round(serial_wall / parallel_wall, 3)
                if parallel_wall > 0
                else 0.0,
            }
        )
    return BenchResult(
        name="fleet_shard",
        tags=["scenario", "fleet"],
        unit="run",
        iterations=iterations,
        seconds=seconds,
        notes=(
            f"{nyms} arrivals over {shards} shards x 4 hosts with epoch "
            "barriers, per-shard KSM settlement, and every journal "
            "streamed to a JSONL spool (fresh spool dir per run)"
        ),
        extra=extra,
    )


# -- registry ---------------------------------------------------------------

BENCHES: Dict[str, Bench] = {
    bench.name: bench
    for bench in [
        Bench(
            "memory_churn",
            ["memory"],
            "GuestMemory map/dirty/erase churn vs the seed per-page multiset",
            _bench_memory_churn,
        ),
        Bench(
            "ksm_stats",
            ["memory", "ksm"],
            "ksmd wakeup accounting vs the seed full rescan",
            _bench_ksm_stats,
        ),
        Bench(
            "onion_throughput",
            ["crypto", "tor"],
            "3-hop onion round trips vs the seed per-layer recomputation",
            _bench_onion_throughput,
        ),
        Bench(
            "poly1305",
            ["crypto"],
            "large-message MAC vs the seed per-block reduction loop",
            _bench_poly1305,
        ),
        Bench(
            "chacha20_xor",
            ["crypto"],
            "bulk stream encryption vs the scalar block function",
            _bench_chacha20_xor,
        ),
        Bench(
            "mixnet_packet",
            ["crypto", "mixnet"],
            "3-layer mix packet pump vs the seed per-packet key exchanges",
            _bench_mixnet_packet,
        ),
        Bench(
            "event_queue_load",
            ["sim"],
            "schedule/cancel/drain churn with len() polling",
            _bench_event_queue_load,
        ),
        Bench(
            "fig3_scenario",
            ["scenario", "memory"],
            "the Figure 3 measurement loop under wall-clock timing",
            _bench_fig3_scenario,
        ),
        Bench(
            "nym_lifecycle",
            ["scenario"],
            "create/browse/discard one nym under wall-clock timing",
            _bench_nym_lifecycle,
        ),
        Bench(
            "content_draw",
            ["memory", "content"],
            "bulk cache-content draws vs the seed pure-python randbytes",
            _bench_content_draw,
        ),
        Bench(
            "nym_launch",
            ["scenario", "launch"],
            "flash-cloned nym launches vs the seed cold-boot path",
            _bench_nym_launch,
        ),
        Bench(
            "fleet_arrival",
            ["scenario", "fleet"],
            "fleet placement waves vs cold boots with seed accounting",
            _bench_fleet_arrival,
        ),
        Bench(
            "fleet_wave",
            ["scenario", "fleet"],
            "batched wave admission vs the seed per-arrival host scan",
            _bench_fleet_wave,
        ),
        Bench(
            "fleet_shard",
            ["scenario", "fleet"],
            "sharded epoch-barrier runs with streamed journal spools",
            _bench_fleet_shard,
        ),
    ]
}


def select_benches(
    only: Optional[List[str]] = None, tag: Optional[str] = None
) -> List[Bench]:
    """Resolve a ``--only``/``--tag`` selection (raises KeyError on typos)."""
    if only:
        missing = [name for name in only if name not in BENCHES]
        if missing:
            raise KeyError(
                f"unknown bench(es): {', '.join(missing)}; "
                f"available: {', '.join(sorted(BENCHES))}"
            )
        selected = [BENCHES[name] for name in only]
    else:
        selected = list(BENCHES.values())
    if tag:
        selected = [bench for bench in selected if tag in bench.tags]
        if not selected:
            tags = sorted({t for bench in BENCHES.values() for t in bench.tags})
            raise KeyError(f"no bench has tag {tag!r}; available: {', '.join(tags)}")
    return selected


def run_benches(benches: List[Bench], quick: bool) -> List[BenchResult]:
    return [bench.run(quick) for bench in benches]
