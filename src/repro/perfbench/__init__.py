"""Wall-clock performance benchmarks for the simulator's hot paths.

``repro bench`` (see :mod:`repro.cli`) runs the registry in
:mod:`repro.perfbench.benches`; frozen seed implementations live in
:mod:`repro.perfbench.legacy` so before/after speedups are measured live,
not quoted from an old machine.
"""

from repro.perfbench.benches import BENCHES, Bench, run_benches, select_benches
from repro.perfbench.harness import (
    BenchResult,
    environment_metadata,
    format_results_table,
    measure,
    save_bench_results,
)

__all__ = [
    "BENCHES",
    "Bench",
    "BenchResult",
    "environment_metadata",
    "format_results_table",
    "measure",
    "run_benches",
    "save_bench_results",
    "select_benches",
]
