"""Frozen pre-overhaul ("seed") implementations of the hot paths.

These are byte-for-byte behavioural copies of the implementations the
repository shipped before the O(Δ) accounting / vectorized-crypto
overhaul.  They exist for two reasons:

* **Equivalence tests** pin the rewritten `GuestMemory`/`Ksm`/Poly1305/
  onion paths against the seed semantics (`tests/test_memory_equivalence.py`,
  `tests/test_crypto_vectorized.py`).
* **Honest speedups**: `repro bench` measures *this* code next to the live
  code in the same process on the same machine, so the before/after
  numbers recorded in ``BENCH_hotpaths.json`` are never stale hard-coded
  constants.

Nothing here is wired into the simulator; importing this module has no
side effects on the production paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import MemoryError_
from repro.memory.pages import (
    PAGE_SIZE,
    ContentTag,
    ZERO_TAG,
    bytes_to_pages,
    image_tag,
    is_mergeable,
    pages_to_bytes,
    unique_tag,
)

# ---------------------------------------------------------------------------
# Seed GuestMemory: one dict entry per page content tag (unique pages get an
# entry *each*, so dirtying 1 GiB allocates ~262k entries).
# ---------------------------------------------------------------------------


class LegacyGuestMemory:
    """The seed page-accounting model: a multiset of per-page content tags."""

    def __init__(self, owner_id: str, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise MemoryError_(f"guest memory must be positive, got {size_bytes}")
        self.owner_id = owner_id
        self._pages: Dict[ContentTag, int] = {ZERO_TAG: bytes_to_pages(size_bytes)}
        self._unique_serial = 0
        self._erased = False

    @property
    def total_pages(self) -> int:
        return sum(self._pages.values())

    @property
    def erased(self) -> bool:
        return self._erased

    def page_groups(self) -> Iterator[Tuple[ContentTag, int]]:
        return iter(self._pages.items())

    @property
    def clean_bytes(self) -> int:
        clean = sum(n for tag, n in self._pages.items() if tag[0] != "unique")
        return pages_to_bytes(clean)

    def stats(self) -> Tuple[int, int, int, int]:
        """(total, zero, image, unique) page counts — tuple form for tests."""
        zero = self._pages.get(ZERO_TAG, 0)
        image = sum(n for tag, n in self._pages.items() if tag[0] == "image")
        unique = sum(n for tag, n in self._pages.items() if tag[0] == "unique")
        return (self.total_pages, zero, image, unique)

    def _take_pages(self, count: int) -> None:
        remaining = count
        for tag in sorted(self._pages, key=lambda t: (t[0] != "zero", t)):
            if remaining == 0:
                break
            if tag[0] == "unique":
                continue
            take = min(self._pages[tag], remaining)
            self._pages[tag] -= take
            if self._pages[tag] == 0:
                del self._pages[tag]
            remaining -= take
        if remaining:
            raise MemoryError_(
                f"guest {self.owner_id}: cannot repurpose {count} pages "
                f"({remaining} short; all pages privately dirtied)"
            )

    def map_image(self, image_id: str, size_bytes: int, first_block: int = 0) -> None:
        pages = bytes_to_pages(size_bytes)
        self._take_pages(pages)
        for block in range(first_block, first_block + pages):
            tag = image_tag(image_id, block)
            self._pages[tag] = self._pages.get(tag, 0) + 1

    def dirty(self, size_bytes: int) -> None:
        pages = bytes_to_pages(size_bytes)
        self._take_pages(pages)
        for _ in range(pages):
            tag = unique_tag(self.owner_id, self._unique_serial)
            self._unique_serial += 1
            self._pages[tag] = 1

    def dirty_pages(self, pages: int) -> None:
        self.dirty(pages_to_bytes(pages))

    def secure_erase(self) -> int:
        wiped = self.total_pages
        self._pages = {ZERO_TAG: wiped}
        self._erased = True
        return wiped


# ---------------------------------------------------------------------------
# Seed KSM accounting: a full O(total pages) rescan of every guest's page
# groups on every stats() call.
# ---------------------------------------------------------------------------


def legacy_merge_candidates(
    guests: Sequence[LegacyGuestMemory], merge_zero_pages: bool = False
) -> Dict[ContentTag, int]:
    """Mergeable content tags mapped to their total page counts (>= 2)."""
    counts: Dict[ContentTag, int] = {}
    for guest in guests:
        for tag, count in guest.page_groups():
            if not is_mergeable(tag):
                continue
            if tag[0] == "zero" and not merge_zero_pages:
                continue
            counts[tag] = counts.get(tag, 0) + count
    return {tag: count for tag, count in counts.items() if count >= 2}


def legacy_ksm_stats(
    guests: Sequence[LegacyGuestMemory],
    coverage: float = 1.0,
    merge_zero_pages: bool = False,
) -> Tuple[int, int, int]:
    """Seed (pages_shared, pages_sharing, pages_saved), truncation bias and all."""
    candidates = legacy_merge_candidates(guests, merge_zero_pages)
    shared = len(candidates)
    sharing = sum(candidates.values())
    shared_now = int(shared * coverage)
    sharing_now = int(sharing * coverage)
    return (shared_now, sharing_now, max(0, sharing_now - shared_now))


# ---------------------------------------------------------------------------
# Seed Poly1305: one big-int multiply *and* one 130-bit modular reduction per
# 16-byte block.
# ---------------------------------------------------------------------------

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def legacy_poly1305_mac(key: bytes, message: bytes) -> bytes:
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for start in range(0, len(message), 16):
        chunk = message[start : start + 16]
        block = int.from_bytes(chunk + b"\x01", "little")
        accumulator = ((accumulator + block) * r) % _P
    tag = (accumulator + s) & ((1 << 128) - 1)
    return tag.to_bytes(16, "little")


# ---------------------------------------------------------------------------
# Seed onion path: every layer is a fresh ChaCha20 keystream computation —
# 2*(hops+1) full cipher evaluations per relayed round trip.
# ---------------------------------------------------------------------------


def legacy_onion_round_trip(
    forward_keys: Sequence[bytes],
    backward_keys: Sequence[bytes],
    nonce: bytes,
    plaintext: bytes,
) -> bytes:
    """Client wraps, each relay peels/wraps, client unwraps — seed style."""
    from repro.crypto.chacha20 import chacha20_xor

    data = plaintext
    for key in reversed(forward_keys):  # client onion_encrypt
        data = chacha20_xor(key, nonce, data)
    for key in forward_keys:  # relays peel forward
        data = chacha20_xor(key, nonce, data)
    for key in reversed(backward_keys):  # relays wrap backward
        data = chacha20_xor(key, nonce, data)
    for key in backward_keys:  # client onion_decrypt
        data = chacha20_xor(key, nonce, data)
    return data


# ---------------------------------------------------------------------------
# Seed launch path: context managers that swap the live caches and O(Δ)
# accounting back to the pre-flash-clone behaviour *in place*, so the
# `nym_launch` / `fleet_arrival` baselines run the real manager and fleet
# code with only the optimizations reverted.
# ---------------------------------------------------------------------------


@contextmanager
def seed_crypto_mode():
    """Run with the seed handshake costs: scalar-ladder keygen on every
    ntor handshake, no relay-side memo, no client-side keyshare cache."""
    import sys

    from repro.anonymizers.tor import relay as relay_mod
    from repro.anonymizers.tor.circuit import NTOR_CLIENT_CACHE

    x25519_mod = sys.modules["repro.crypto.x25519"]
    fixed_base_was = x25519_mod.fixed_base_enabled()
    memo_was = relay_mod.handshake_memo_enabled()
    cache_was = NTOR_CLIENT_CACHE.enabled
    x25519_mod.set_fixed_base_enabled(False)
    relay_mod.set_handshake_memo_enabled(False)
    NTOR_CLIENT_CACHE.enabled = False
    NTOR_CLIENT_CACHE.clear()
    try:
        yield
    finally:
        x25519_mod.set_fixed_base_enabled(fixed_base_was)
        relay_mod.set_handshake_memo_enabled(memo_was)
        NTOR_CLIENT_CACHE.enabled = cache_was
        NTOR_CLIENT_CACHE.clear()


def _seed_layer_used_bytes(self) -> int:
    return sum(len(data) for data in self._files.values())


def _seed_hypervisor_memory_snapshot(self):
    from repro.vmm.hypervisor import MemorySnapshot

    stats = self.memory.stats()
    ksm_stats = self.ksm.stats()
    fs_bytes = sum(vm.fs_ram_bytes for vm in self._vms.values())
    return MemorySnapshot(
        used_bytes=stats.used_bytes + fs_bytes,
        guest_ram_bytes=stats.guest_allocated_bytes,
        fs_bytes=fs_bytes,
        ksm_pages_sharing=ksm_stats.pages_sharing,
        ksm_pages_saved=ksm_stats.pages_saved,
    )


_seed_token_serial = 0


def _seed_accounting_token(self):
    # Always fresh: every consumer cache keyed on the token (host snapshot
    # cache, fleet admission cache) misses on each read, restoring the
    # seed per-query accounting cost.
    global _seed_token_serial
    _seed_token_serial += 1
    return (_seed_token_serial,)


def _seed_host_memory_stats(self):
    from repro.memory.physmem import HostMemoryStats

    allocated = pages_to_bytes(sum(g.total_pages for g in self._guests.values()))
    return HostMemoryStats(
        total_bytes=self.total_bytes,
        base_used_bytes=self.base_used_bytes,
        guest_allocated_bytes=allocated,
        ksm_saved_bytes=self.ksm.stats().bytes_saved,
    )


def _seed_physmem_used_bytes_now(self) -> int:
    # The seed admission check built the full stats snapshot per launch.
    return _seed_host_memory_stats(self).used_bytes


def _seed_ksm_total_guest_pages(self) -> int:
    return sum(guest.total_pages for guest in self._guests)


def _seed_ksm_index_current(self) -> bool:
    if self._index_stale:
        return False
    epochs = self._guest_epochs
    for guest in self._guests:
        if epochs.get(id(guest)) != guest.dirty_epoch:
            return False
    return True


@contextmanager
def seed_accounting_mode():
    """Run with the seed O(N) accounting sums: `Layer.used_bytes` walks
    every file, `HostMemory.stats` and `Ksm.total_guest_pages` walk every
    guest, `Ksm._index_current` re-walks dirty epochs per call,
    `Hypervisor.memory_snapshot` re-sums writable FS bytes over every VM,
    the accounting token is always fresh (defeating the host snapshot and
    fleet admission caches), and KSM's zero-coverage stats gate and
    version-keyed stats memo are both off."""
    from repro.memory.ksm import Ksm
    from repro.memory.physmem import HostMemory
    from repro.unionfs.layer import Layer
    from repro.vmm.hypervisor import Hypervisor

    saved = (
        Layer.used_bytes,
        HostMemory.stats,
        HostMemory._used_bytes_now,
        Ksm.total_guest_pages,
        Ksm._index_current,
        Hypervisor.memory_snapshot,
        Hypervisor.accounting_token,
        Ksm._coverage_gate_enabled,
        Ksm._stats_cache_enabled,
    )
    Layer.used_bytes = property(_seed_layer_used_bytes)
    HostMemory.stats = _seed_host_memory_stats
    HostMemory._used_bytes_now = _seed_physmem_used_bytes_now
    Ksm.total_guest_pages = property(_seed_ksm_total_guest_pages)
    Ksm._index_current = _seed_ksm_index_current
    Hypervisor.memory_snapshot = _seed_hypervisor_memory_snapshot
    Hypervisor.accounting_token = _seed_accounting_token
    Ksm._coverage_gate_enabled = False
    Ksm._stats_cache_enabled = False
    try:
        yield
    finally:
        (
            Layer.used_bytes,
            HostMemory.stats,
            HostMemory._used_bytes_now,
            Ksm.total_guest_pages,
            Ksm._index_current,
            Hypervisor.memory_snapshot,
            Hypervisor.accounting_token,
            Ksm._coverage_gate_enabled,
            Ksm._stats_cache_enabled,
        ) = saved


def _seed_fleet_host_list(self):
    return [self.hosts[hid] for hid in sorted(self.hosts)]


def _seed_fleet_candidates(self, exclude=None):
    admissible = [
        h
        for h in _seed_fleet_host_list(self)
        if h.host_id != exclude and h.admits(self.need_ram_bytes)
    ]
    calm = [
        h
        for h in admissible
        if (h.used_bytes + self.footprint_bytes) / h.total_bytes
        <= self.high_watermark
    ]
    return calm or admissible


@contextmanager
def seed_admission_mode():
    """The seed fleet-admission path: host lists rebuilt and the full
    watermark arithmetic re-derived on every arrival (no token-keyed
    verdict cache, no wave batching reaches `_candidates`), on top of the
    seed accounting sums."""
    from repro.fleet.fleet import Fleet

    saved = (Fleet.host_list, Fleet._candidates)
    Fleet.host_list = _seed_fleet_host_list
    Fleet._candidates = _seed_fleet_candidates
    try:
        with seed_accounting_mode():
            yield
    finally:
        Fleet.host_list, Fleet._candidates = saved


@contextmanager
def seed_mixnet_mode():
    """Run the mixnet packet path with seed costs: a fresh x25519
    exchange per layer on the sender (no ephemeral-key cache), a fresh
    exchange per peel on every node (no per-node memo), and a fresh
    ChaCha20 keystream + Poly1305 one-time key per AEAD (no per-layer-key
    stream cache)."""
    from repro.mixnet import packet as packet_mod

    cache_was = packet_mod.SENDER_KEY_CACHE.enabled
    memo_was = packet_mod.peel_memo_enabled()
    stream_was = packet_mod.stream_cache_enabled()
    packet_mod.SENDER_KEY_CACHE.enabled = False
    packet_mod.SENDER_KEY_CACHE.clear()
    packet_mod.set_peel_memo_enabled(False)
    packet_mod.set_stream_cache_enabled(False)
    try:
        yield
    finally:
        packet_mod.SENDER_KEY_CACHE.enabled = cache_was
        packet_mod.SENDER_KEY_CACHE.clear()
        packet_mod.set_peel_memo_enabled(memo_was)
        packet_mod.set_stream_cache_enabled(stream_was)


@contextmanager
def seed_content_mode():
    """Draw bulk pseudo-random content through the seed pure-python
    ``random.Random.randbytes`` path instead of the vectorized numpy
    MT19937 mirror.  The byte stream and the generator's stream position
    are identical either way — only the wall-clock cost differs."""
    from repro.sim import rng as rng_mod

    was = rng_mod._numpy_content_enabled
    rng_mod.set_numpy_content_enabled(False)
    try:
        yield
    finally:
        rng_mod.set_numpy_content_enabled(was)


@contextmanager
def seed_launch_mode():
    """The full pre-flash-clone launch path: seed crypto plus seed
    accounting plus seed bulk-content draws (callers additionally pass
    ``flash_clone=False`` so the zygote cache is off and every launch
    cold-boots)."""
    with seed_crypto_mode(), seed_accounting_mode(), seed_content_mode():
        yield


__all__ = [
    "LegacyGuestMemory",
    "legacy_merge_candidates",
    "legacy_ksm_stats",
    "legacy_poly1305_mac",
    "legacy_onion_round_trip",
    "seed_crypto_mode",
    "seed_accounting_mode",
    "seed_admission_mode",
    "seed_content_mode",
    "seed_launch_mode",
    "seed_mixnet_mode",
    "PAGE_SIZE",
]
