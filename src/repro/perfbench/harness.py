"""Wall-clock measurement harness for the hot-path benchmarks.

Unlike ``benchmarks/`` (which regenerates the paper's figures in
*simulated* time), ``repro bench`` measures how fast the simulator itself
runs: real seconds per operation, with the frozen seed implementations
from :mod:`repro.perfbench.legacy` timed in the same process so speedups
are honest before/after numbers, never stale constants.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Target wall-clock spent per measured side, full mode (seconds).
FULL_BUDGET_S = 0.5
#: Target wall-clock per side under ``--quick`` (CI smoke) mode.
QUICK_BUDGET_S = 0.05


@dataclass
class BenchResult:
    """One benchmark's measurement, optionally paired with a seed baseline."""

    name: str
    tags: List[str]
    iterations: int
    seconds: float
    unit: str = "op"
    #: Units processed per iteration (e.g. bytes for throughput benches).
    work_per_iteration: float = 1.0
    baseline_iterations: Optional[int] = None
    baseline_seconds: Optional[float] = None
    notes: str = ""
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def per_second(self) -> float:
        if self.seconds == 0:
            return float("inf")
        return self.iterations * self.work_per_iteration / self.seconds

    @property
    def baseline_per_second(self) -> Optional[float]:
        if self.baseline_seconds is None or self.baseline_iterations is None:
            return None
        if self.baseline_seconds == 0:
            return float("inf")
        return (
            self.baseline_iterations * self.work_per_iteration / self.baseline_seconds
        )

    @property
    def speedup(self) -> Optional[float]:
        """current throughput / seed throughput (>1 means faster now)."""
        baseline = self.baseline_per_second
        if baseline is None or baseline == 0:
            return None
        return self.per_second / baseline

    def to_dict(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "tags": sorted(self.tags),
            "unit": self.unit,
            "iterations": self.iterations,
            "seconds": round(self.seconds, 9),
            "per_second": self.per_second,
        }
        if self.baseline_seconds is not None:
            payload["baseline_iterations"] = self.baseline_iterations
            payload["baseline_seconds"] = round(self.baseline_seconds, 9)
            payload["baseline_per_second"] = self.baseline_per_second
            payload["speedup"] = round(self.speedup, 3)
        if self.notes:
            payload["notes"] = self.notes
        if self.extra:
            payload["extra"] = dict(sorted(self.extra.items()))
        return payload


def measure(
    func: Callable[[], object],
    budget_s: float,
    min_iterations: int = 3,
) -> tuple:
    """Run ``func`` repeatedly for about ``budget_s`` wall-clock seconds.

    Returns ``(iterations, total_seconds)``.  One untimed warmup call runs
    first (imports, lazy caches, JIT-ish numpy setup), then iterations are
    batched geometrically so the timing loop overhead stays negligible for
    microsecond-scale operations.
    """
    func()  # warmup
    iterations = 0
    total = 0.0
    batch = 1
    while iterations < min_iterations or total < budget_s:
        start = time.perf_counter()
        for _ in range(batch):
            func()
        total += time.perf_counter() - start
        iterations += batch
        if total < budget_s / 8:
            batch *= 2
    return iterations, total


def environment_metadata() -> Dict[str, object]:
    """Where these numbers came from (recorded into the results JSON)."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a soft dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "argv": list(sys.argv),
    }


def save_bench_results(
    path: str, results: List[BenchResult], quick: bool
) -> pathlib.Path:
    """Write the results (plus environment metadata) as pretty JSON."""
    payload = {
        "schema": "repro.perfbench/v1",
        "quick": quick,
        "environment": environment_metadata(),
        "results": [result.to_dict() for result in results],
    }
    out = pathlib.Path(path)
    if out.parent != pathlib.Path("."):
        out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def format_results_table(results: List[BenchResult]) -> str:
    """Human-readable summary of a bench run."""
    headers = ("bench", "rate", "unit", "seed rate", "speedup")
    rows = []
    for result in results:
        baseline = result.baseline_per_second
        rows.append(
            (
                result.name,
                f"{result.per_second:,.1f}",
                f"{result.unit}/s",
                f"{baseline:,.1f}" if baseline is not None else "-",
                f"{result.speedup:.1f}x" if result.speedup is not None else "-",
            )
        )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
