"""Preset providers: the free-to-use services the paper names (§3.5)."""

from __future__ import annotations

from repro.cloud.provider import CloudProvider, GIB


def make_dropbox() -> CloudProvider:
    """Dropbox-like: 2 GB free tier."""
    return CloudProvider("dropbox.com", "198.51.100.80", free_quota_bytes=2 * GIB)


def make_google_drive() -> CloudProvider:
    """Google-Drive-like: 15 GB free tier."""
    return CloudProvider("drive.google.com", "198.51.100.81", free_quota_bytes=15 * GIB)
