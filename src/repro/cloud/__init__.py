"""Cloud storage: the quasi-persistent nym backing store (§3.5).

Free-to-use providers (the paper names Dropbox and Google Drive) hold
encrypted nym snapshots under pseudonymous accounts.  Because every
interaction is carried by the nym's anonymizer and every blob is sealed
client-side, the provider learns neither who owns an account nor what a
nym contains — asserted by this package's tests via the provider's own
access log.
"""

from repro.cloud.provider import CloudAccount, CloudProvider, StoredBlob
from repro.cloud.services import make_dropbox, make_google_drive

__all__ = [
    "CloudAccount",
    "CloudProvider",
    "StoredBlob",
    "make_dropbox",
    "make_google_drive",
]
