"""A cloud storage provider on the simulated Internet."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CloudError, QuotaExceededError
from repro.net.addresses import Ipv4Address
from repro.net.internet import HttpResponse, Server

GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class StoredBlob:
    """One object at rest: the provider sees only ciphertext and size."""

    name: str
    data: bytes
    stored_at: float

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class CloudAccount:
    """A (pseudonymous) account: username, password hash, quota, blobs."""

    username: str
    password: str  # the simulated provider stores it plainly; it's a sim
    quota_bytes: int
    blobs: Dict[str, StoredBlob] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(blob.size for blob in self.blobs.values())


@dataclass(frozen=True)
class AccessLogEntry:
    """What the provider can observe about one request."""

    time: float
    username: str
    operation: str  # "login", "put", "get", "delete", "list"
    blob_name: str
    observed_ip: Ipv4Address


class CloudProvider(Server):
    """Account management plus a blob store, with an observer's-eye log.

    The access log is the adversary's evidence trail: tests assert that
    nym traffic shows only exit-relay addresses, never the user's.
    """

    def __init__(self, hostname: str, ip: str, free_quota_bytes: int = 2 * GIB) -> None:
        super().__init__(hostname, Ipv4Address.parse(ip))
        self.free_quota_bytes = free_quota_bytes
        self._accounts: Dict[str, CloudAccount] = {}
        self.access_log: List[AccessLogEntry] = []

    # -- accounts -----------------------------------------------------------------

    def create_account(self, username: str, password: str) -> CloudAccount:
        if username in self._accounts:
            raise CloudError(f"account {username!r} already exists on {self.hostname}")
        account = CloudAccount(
            username=username, password=password, quota_bytes=self.free_quota_bytes
        )
        self._accounts[username] = account
        return account

    def login(self, username: str, password: str, now: float, src_ip: Ipv4Address) -> CloudAccount:
        account = self._accounts.get(username)
        if account is None or account.password != password:
            raise CloudError(f"authentication failed for {username!r}")
        self._log(now, username, "login", "", src_ip)
        return account

    def _log(
        self, now: float, username: str, op: str, blob: str, src_ip: Ipv4Address
    ) -> None:
        self.access_log.append(
            AccessLogEntry(
                time=now, username=username, operation=op, blob_name=blob,
                observed_ip=src_ip,
            )
        )

    # -- blob operations ----------------------------------------------------------------

    def put(
        self,
        account: CloudAccount,
        name: str,
        data: bytes,
        now: float,
        src_ip: Ipv4Address,
    ) -> StoredBlob:
        existing = account.blobs.get(name)
        projected = account.used_bytes - (existing.size if existing else 0) + len(data)
        if projected > account.quota_bytes:
            raise QuotaExceededError(
                f"{account.username}@{self.hostname}: {projected} B exceeds quota "
                f"{account.quota_bytes} B"
            )
        blob = StoredBlob(name=name, data=bytes(data), stored_at=now)
        account.blobs[name] = blob
        self._log(now, account.username, "put", name, src_ip)
        return blob

    def get(
        self, account: CloudAccount, name: str, now: float, src_ip: Ipv4Address
    ) -> StoredBlob:
        blob = account.blobs.get(name)
        if blob is None:
            raise CloudError(f"no blob {name!r} in {account.username}@{self.hostname}")
        self._log(now, account.username, "get", name, src_ip)
        return blob

    def delete(
        self, account: CloudAccount, name: str, now: float, src_ip: Ipv4Address
    ) -> None:
        if name not in account.blobs:
            raise CloudError(f"no blob {name!r} in {account.username}@{self.hostname}")
        del account.blobs[name]
        self._log(now, account.username, "delete", name, src_ip)

    def list_blobs(
        self, account: CloudAccount, now: float, src_ip: Ipv4Address
    ) -> List[str]:
        self._log(now, account.username, "list", "", src_ip)
        return sorted(account.blobs)

    # -- what the provider "knows" --------------------------------------------------

    def observed_ips_for(self, username: str) -> List[Ipv4Address]:
        return [e.observed_ip for e in self.access_log if e.username == username]

    def handle(self, path: str, request_bytes: int = 500) -> HttpResponse:
        self.requests_served += 1
        return HttpResponse(status=200, body_bytes=4096)  # the login page
