"""Pluggable placement policies: which host gets the next nymbox.

Every policy is a pure, deterministic function of the candidate list —
same fleet state, same answer — so whole-cluster runs stay bit-identical
across seeds.  Candidates arrive pre-filtered by admission control (not
crashed, not draining, enough free RAM) in ``host_id`` order.

The interesting one is :class:`KsmAware`: §5.2 of the paper shows
samepage merging reclaiming most of a nymbox's image cache when guests
share a base image, but KSM only merges *within* a host — so savings
depend directly on co-locating same-image nyms.  The policy packs each
base image onto as few hosts as possible.

Wave batching: policies that set ``supports_batch`` implement
:meth:`PlacementPolicy.choose_batch` over a :class:`WaveView` — per-host
accounting held as numpy arrays, admissibility and the calm-watermark
filter evaluated as vector masks, and placements applied as running sums
— so a whole arrival wave is planned without O(hosts) Python-level work
per nym.  Every ``choose_batch`` is *exactly* equivalent to calling
:meth:`choose` once per request against the simulated state (the
byte-identical-journal tests in tests/test_fleet_wave.py pin this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.errors import FleetError
from repro.fleet.host import HostHandle

try:  # numpy powers the wave planner; policies fall back to choose() without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the environment
    _np = None


class WaveView:
    """Planner state for one arrival wave: per-host accounting as arrays.

    Built once per wave from the hosts' (cached) memory snapshots; every
    simulated placement updates the running sums in place.  The float
    watermark arithmetic matches the scalar admission check bit-for-bit
    (int64 → float64 division, same IEEE semantics for hosts below 2^53
    bytes of RAM).
    """

    def __init__(
        self,
        hosts: Sequence[HostHandle],
        need: int,
        footprint: int,
        used_delta: int,
        high_watermark: float,
    ) -> None:
        if _np is None:  # pragma: no cover - numpy ships with the environment
            raise FleetError("wave planning requires numpy")
        self.hosts = list(hosts)
        self.need = need
        self.footprint = footprint
        self.used_delta = used_delta
        self.high_watermark = high_watermark
        n = len(self.hosts)
        self.used = _np.zeros(n, dtype=_np.int64)
        self.free_ram = _np.zeros(n, dtype=_np.int64)
        self.total = _np.ones(n, dtype=_np.int64)
        self.alive = _np.zeros(n, dtype=bool)
        self.n_images = _np.zeros(n, dtype=_np.int64)
        self.image_counts: List[Dict[str, int]] = []
        for i, host in enumerate(self.hosts):
            counts = host.image_counts()
            self.image_counts.append(counts)
            if host.crashed or host.draining:
                self.free_ram[i] = -1
                continue
            snap = host.memory_snapshot()
            self.alive[i] = True
            self.used[i] = snap.used_bytes
            self.total[i] = host.total_bytes
            self.free_ram[i] = host.total_bytes - (snap.used_bytes - snap.fs_bytes)
            self.n_images[i] = len(counts)
        self._count_arrays: Dict[str, "_np.ndarray"] = {}

    # -- masks ----------------------------------------------------------------

    def candidate_mask(self):
        """Admissibility + calm-watermark filter, as one vector op.

        Mirrors ``Fleet._candidates``: hosts that stay under the high
        watermark after the placement, falling back to anyone with raw
        RAM headroom when no host is calm.
        """
        admissible = self.alive & (self.free_ram >= self.need)
        if not admissible.any():
            return admissible
        calm = admissible & (
            (self.used + self.footprint) / self.total <= self.high_watermark
        )
        return calm if calm.any() else admissible

    def counts_for(self, image_id: str):
        """Per-host resident counts of ``image_id`` (cached, kept updated)."""
        arr = self._count_arrays.get(image_id)
        if arr is None:
            arr = _np.fromiter(
                (counts.get(image_id, 0) for counts in self.image_counts),
                dtype=_np.int64,
                count=len(self.hosts),
            )
            self._count_arrays[image_id] = arr
        return arr

    # -- simulated placement ---------------------------------------------------

    def place(self, idx: int, image_id: str = "") -> None:
        """Apply one predicted placement to the running sums."""
        self.used[idx] += self.used_delta
        self.free_ram[idx] -= self.used_delta
        if image_id:
            counts = self.image_counts[idx]
            previous = counts.get(image_id, 0)
            counts[image_id] = previous + 1
            if previous == 0:
                self.n_images[idx] += 1
            arr = self._count_arrays.get(image_id)
            if arr is not None:
                arr[idx] += 1

    def mask_capacity(self, idx: int) -> int:
        """How many consecutive placements keep ``idx`` the chosen host.

        Only ``idx`` changes while a chunk lands on it, so the pick is
        stable until ``idx`` leaves the candidate mask (or the mask's
        regime flips from calm to fallback).  Admissibility capacity is
        exact integer arithmetic; the calm capacity solves the float
        watermark inequality and then verifies the boundary with the
        exact scalar comparison, so chunked assignment never disagrees
        with the one-at-a-time checks.
        """
        used = int(self.used[idx])
        free = int(self.free_ram[idx])
        total = int(self.total[idx])
        delta = self.used_delta
        n_adm = (free - self.need) // delta + 1 if free >= self.need else 0
        admissible = self.alive & (self.free_ram >= self.need)
        calm = admissible & (
            (self.used + self.footprint) / self.total <= self.high_watermark
        )
        if calm.any():
            n_calm = self._calm_count(used, total)
            return max(1, min(n_calm, n_adm))
        return max(1, n_adm)

    def _calm_count(self, used: int, total: int) -> int:
        """Max placements on a host while it passes the calm check first."""
        high = self.high_watermark
        footprint = self.footprint
        delta = self.used_delta
        if (used + footprint) / total > high:
            return 0
        n = int((high * total - used - footprint) // delta) + 1
        if n < 1:
            n = 1
        while n > 0 and (used + (n - 1) * delta + footprint) / total > high:
            n -= 1
        while (used + n * delta + footprint) / total <= high:
            n += 1
        return n


class PlacementPolicy:
    """Chooses one host from the admissible candidates (or ``None``)."""

    name = "abstract"
    #: Policies that implement :meth:`choose_batch`; others fall back to
    #: per-arrival :meth:`choose` calls inside ``Fleet.place_many``.
    supports_batch = False

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        raise NotImplementedError

    def choose_batch(
        self, candidates: WaveView, requests: Sequence
    ) -> List[Optional[int]]:
        """Plan one host index (or ``None``) per request against ``candidates``.

        Must be exactly equivalent to calling :meth:`choose` per request
        with the view updated between picks.  Rejected requests leave the
        view unchanged (skip semantics); callers enforcing raise
        semantics truncate at the first ``None``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FirstFit(PlacementPolicy):
    """The lowest-numbered host with room: packs the front of the fleet."""

    name = "first-fit"
    supports_batch = True

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        return candidates[0] if candidates else None

    def choose_batch(
        self, candidates: WaveView, requests: Sequence
    ) -> List[Optional[int]]:
        """Running-sum assignment: fill each host to its capacity in order.

        First-fit sticks with the first candidate host until it leaves
        the mask, so whole chunks of the wave assign in one capacity
        computation instead of one mask scan per nym.
        """
        view = candidates
        picks: List[Optional[int]] = []
        remaining = len(requests)
        while remaining > 0:
            mask = view.candidate_mask()
            if not mask.any():
                # Rejections leave the view unchanged, so every later
                # request (same RAM need) rejects too.
                picks.extend([None] * remaining)
                break
            idx = int(_np.argmax(mask))
            take = min(view.mask_capacity(idx), remaining)
            for _ in range(take):
                picks.append(idx)
                view.place(idx)
            remaining -= take
        return picks


class LeastLoaded(PlacementPolicy):
    """The emptiest host: spreads load, maximizes per-nym headroom."""

    name = "least-loaded"
    supports_batch = True

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.used_bytes, h.host_id))

    def choose_batch(
        self, candidates: WaveView, requests: Sequence
    ) -> List[Optional[int]]:
        """Water-filling as array ops: each pick is a masked argmin over
        the running used-bytes sums (first occurrence of the minimum =
        lowest host_id, exactly the sequential tiebreak)."""
        view = candidates
        int_max = _np.iinfo(_np.int64).max
        picks: List[Optional[int]] = []
        for index in range(len(requests)):
            mask = view.candidate_mask()
            if not mask.any():
                picks.extend([None] * (len(requests) - index))
                break
            masked_used = _np.where(mask, view.used, int_max)
            idx = int(_np.argmin(masked_used))
            picks.append(idx)
            view.place(idx)
        return picks


class KsmAware(PlacementPolicy):
    """Co-locate nyms sharing a base image to maximize KSM merging.

    Preference order: (1) the host already running the most copies of
    this image (deepening an existing colony shares the whole image
    cache); (2) otherwise the host carrying the fewest *other* images,
    least-loaded first — starting a new colony where it will pollute the
    fewest existing ones.
    """

    name = "ksm-aware"
    supports_batch = True

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        if not candidates:
            return None
        colonies = [h for h in candidates if h.image_count(image_id) > 0]
        if colonies:
            return max(
                colonies,
                # max() keeps the first of equals, so negate host_id order
                # by sorting ahead of time; instead pick explicitly:
                key=lambda h: (h.image_count(image_id), _reverse_id_key(h.host_id)),
            )
        return min(
            candidates,
            key=lambda h: (len(h.images()), h.used_bytes, h.host_id),
        )

    def choose_batch(
        self, candidates: WaveView, requests: Sequence
    ) -> List[Optional[int]]:
        """Pack whole per-image request groups in one pass.

        A run of same-image arrivals keeps deepening the chosen colony
        (its count only grows, so it stays the argmax) until the host
        leaves the candidate mask — so the run assigns in chunks bounded
        by ``mask_capacity`` instead of re-scoring every host per nym.
        """
        view = candidates
        int_max = _np.iinfo(_np.int64).max
        picks: List[Optional[int]] = []
        total = len(requests)
        start = 0
        while start < total:
            image_id = requests[start].image_id
            run = 1
            while (
                start + run < total
                and requests[start + run].image_id == image_id
            ):
                run += 1
            placed = 0
            while placed < run:
                mask = view.candidate_mask()
                if not mask.any():
                    # Image-independent rejection: the whole tail rejects.
                    picks.extend([None] * (total - start - placed))
                    return picks
                image_counts = view.counts_for(image_id)
                colonies = mask & (image_counts > 0)
                if colonies.any():
                    masked_counts = _np.where(colonies, image_counts, -1)
                    idx = int(_np.argmax(masked_counts))
                else:
                    masked_images = _np.where(mask, view.n_images, int_max)
                    fewest = mask & (view.n_images == masked_images.min())
                    masked_used = _np.where(fewest, view.used, int_max)
                    idx = int(_np.argmin(masked_used))
                take = min(view.mask_capacity(idx), run - placed)
                for _ in range(take):
                    picks.append(idx)
                    view.place(idx, image_id)
                placed += take
            start += run
        return picks


def _reverse_id_key(host_id: str) -> tuple:
    """Sort key making *smaller* host ids win inside ``max()``."""
    return tuple(-ord(c) for c in host_id)


PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    FirstFit.name: FirstFit,
    LeastLoaded.name: LeastLoaded,
    KsmAware.name: KsmAware,
}


def make_policy(name: str) -> PlacementPolicy:
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise FleetError(f"unknown placement policy {name!r} (known: {known})") from None
