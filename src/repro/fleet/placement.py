"""Pluggable placement policies: which host gets the next nymbox.

Every policy is a pure, deterministic function of the candidate list —
same fleet state, same answer — so whole-cluster runs stay bit-identical
across seeds.  Candidates arrive pre-filtered by admission control (not
crashed, enough free RAM) in ``host_id`` order.

The interesting one is :class:`KsmAware`: §5.2 of the paper shows
samepage merging reclaiming most of a nymbox's image cache when guests
share a base image, but KSM only merges *within* a host — so savings
depend directly on co-locating same-image nyms.  The policy packs each
base image onto as few hosts as possible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import FleetError
from repro.fleet.host import HostHandle


class PlacementPolicy:
    """Chooses one host from the admissible candidates (or ``None``)."""

    name = "abstract"

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FirstFit(PlacementPolicy):
    """The lowest-numbered host with room: packs the front of the fleet."""

    name = "first-fit"

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        return candidates[0] if candidates else None


class LeastLoaded(PlacementPolicy):
    """The emptiest host: spreads load, maximizes per-nym headroom."""

    name = "least-loaded"

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        if not candidates:
            return None
        return min(candidates, key=lambda h: (h.used_bytes, h.host_id))


class KsmAware(PlacementPolicy):
    """Co-locate nyms sharing a base image to maximize KSM merging.

    Preference order: (1) the host already running the most copies of
    this image (deepening an existing colony shares the whole image
    cache); (2) otherwise the host carrying the fewest *other* images,
    least-loaded first — starting a new colony where it will pollute the
    fewest existing ones.
    """

    name = "ksm-aware"

    def choose(
        self, candidates: List[HostHandle], image_id: str
    ) -> Optional[HostHandle]:
        if not candidates:
            return None
        colonies = [h for h in candidates if h.image_count(image_id) > 0]
        if colonies:
            return max(
                colonies,
                # max() keeps the first of equals, so negate host_id order
                # by sorting ahead of time; instead pick explicitly:
                key=lambda h: (h.image_count(image_id), _reverse_id_key(h.host_id)),
            )
        return min(
            candidates,
            key=lambda h: (len(h.images()), h.used_bytes, h.host_id),
        )


def _reverse_id_key(host_id: str) -> tuple:
    """Sort key making *smaller* host ids win inside ``max()``."""
    return tuple(-ord(c) for c in host_id)


PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    FirstFit.name: FirstFit,
    LeastLoaded.name: LeastLoaded,
    KsmAware.name: KsmAware,
}


def make_policy(name: str) -> PlacementPolicy:
    try:
        return PLACEMENT_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_POLICIES))
        raise FleetError(f"unknown placement policy {name!r} (known: {known})") from None
