"""The fleet scheduler: N hypervisors, one timeline, deterministic placement.

The paper runs Nymix on a single i7/16 GB machine; the ROADMAP's
production north star needs many.  :class:`Fleet` owns a cluster of
:class:`Hypervisor` hosts sharing one base image (and one
:class:`Timeline`, so the whole cluster is bit-reproducible), admits
nymboxes against per-host RAM *and* per-tenant policy (quotas and launch
rate, via ``timeline.tenancy``), places them through a pluggable
:class:`PlacementPolicy`, and keeps hosts below memory-pressure
watermarks by evacuating nyms — the §3.5 quasi-persistence loop
(store-nym → relaunch elsewhere) driven by `repro.faults` retry
machinery.  Host crashes (the ``fleet.host_crash`` fault kind) and
rolling drains (``fleet.host_drain``) evacuate resident nyms the same
way, and hosts can join/leave after construction for autoscaling.

Construction takes one declarative :class:`FleetPolicies` value; the old
loose ``policy=`` / ``high_watermark=`` / ``low_watermark=`` kwargs
survive as shims that emit ``DeprecationWarning``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    FleetCapacityError,
    FleetError,
    RetryExhaustedError,
    TenantQuotaError,
    TenantRateLimitError,
)
from repro.faults.retry import RetryPolicy, retry_call
from repro.fleet.host import HostHandle
from repro.fleet.placement import PlacementPolicy, WaveView, make_policy
from repro.memory.pages import bytes_to_pages, pages_to_bytes
from repro.net.internet import Internet
from repro.runtime import register_process_cache
from repro.sim.clock import Timeline
from repro.tenancy.policy import FleetPolicies
from repro.tenancy.registry import (
    REASON_CAPACITY,
    REASON_QUOTA,
    REASON_RATE,
    TenantRegistry,
)
from repro.vmm.baseimage import build_base_layer, published_merkle_root
from repro.vmm.hypervisor import HostSpec, Hypervisor, NymboxTemplate
from repro.vmm.vm import MIB, VirtualMachine, VmSpec

#: Evacuation relaunch: a few quick attempts on simulated time; capacity
#: usually frees up as other evacuations land, not over long waits.
RELAUNCH_RETRY = RetryPolicy(max_attempts=4, base_backoff_s=2.0, max_backoff_s=16.0)
#: Crash recovery runs inside a timeline callback, where sleeping would
#: rewind the interrupted sleep's clock — so retries are immediate.
CRASH_RETRY = RetryPolicy(max_attempts=4, base_backoff_s=0.0, max_backoff_s=0.0)

#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated Fleet constructor kwargs.
_UNSET = object()


@dataclass(frozen=True)
class PlacementRequest:
    """One arrival in a wave handed to :meth:`Fleet.place_many`."""

    name: str
    image_id: str
    tenant: str = ""


@dataclass(frozen=True)
class PlacementRejection:
    """Why one arrival was turned away (``place_many(on_reject="skip")``).

    Falsy on purpose: callers that used to get ``None`` for rejected
    slots can keep writing ``if box:`` and now also learn the reason —
    ``capacity`` (no host has room), ``quota`` (tenant over its nym/RAM
    ceiling), or ``rate`` (tenant's launch bucket was dry).
    """

    name: str
    image_id: str
    tenant: str
    reason: str

    def __bool__(self) -> bool:
        return False


#: What place_many returns per arrival.
PlacementResult = Union["FleetNymbox", PlacementRejection]


#: Process-wide (base layer, Merkle root) for the default Nymix image.
#: The layer is read-only, so sharing it across fleets is safe; the root
#: hash walk is the expensive part of fleet construction.  Registered
#: with the runtime cache registry so session teardown can release it.
_BASE_IMAGE_CACHE: List[tuple] = []


def _shared_base_image() -> tuple:
    if not _BASE_IMAGE_CACHE:
        layer = build_base_layer()
        _BASE_IMAGE_CACHE.append((layer, published_merkle_root(layer)))
    return _BASE_IMAGE_CACHE[0]


register_process_cache(
    "fleet.base_image", _BASE_IMAGE_CACHE.clear, _BASE_IMAGE_CACHE.__len__
)


def _as_request(item) -> PlacementRequest:
    if isinstance(item, PlacementRequest):
        return item
    if isinstance(item, tuple):
        if len(item) == 3:
            name, image_id, tenant = item
            return PlacementRequest(name=name, image_id=image_id, tenant=tenant)
        name, image_id = item
        return PlacementRequest(name=name, image_id=image_id)
    # Anything arrival-shaped (e.g. workloads.fleet.NymArrival) works.
    return PlacementRequest(
        name=item.name,
        image_id=item.image_id,
        tenant=getattr(item, "tenant", ""),
    )


@dataclass
class FleetNymbox:
    """One scheduled nymbox: the AnonVM/CommVM pair and where it lives."""

    name: str
    image_id: str
    host_id: str
    anonvm: VirtualMachine
    commvm: VirtualMachine
    seq: int
    tenant: str = ""
    extra_dirty_bytes: int = 0  # workload churn carried across relaunches
    moves: int = 0

    @property
    def ram_bytes(self) -> int:
        return self.anonvm.spec.ram_bytes + self.commvm.spec.ram_bytes


@dataclass(frozen=True)
class FleetStats:
    """Cluster-wide accounting for one instant."""

    hosts: int
    hosts_up: int
    nyms_resident: int
    nyms_parked: int
    placements: int
    evacuations: int
    host_crashes: int
    used_bytes: int
    total_bytes: int
    ksm_saved_bytes: int
    host_image_pairs: int
    hosts_draining: int = 0
    host_drains: int = 0

    def export(self) -> Dict[str, object]:
        return {
            "hosts": self.hosts,
            "hosts_up": self.hosts_up,
            "hosts_draining": self.hosts_draining,
            "nyms_resident": self.nyms_resident,
            "nyms_parked": self.nyms_parked,
            "placements": self.placements,
            "evacuations": self.evacuations,
            "host_crashes": self.host_crashes,
            "host_drains": self.host_drains,
            "used_bytes": self.used_bytes,
            "total_bytes": self.total_bytes,
            "ksm_saved_bytes": self.ksm_saved_bytes,
            "used_mib": round(self.used_bytes / MIB, 1),
            "ksm_saved_mib": round(self.ksm_saved_bytes / MIB, 1),
            "host_image_pairs": self.host_image_pairs,
        }


@dataclass(frozen=True)
class DrainReport:
    """Outcome of a rolling drain: where every evacuated nym ended up."""

    hosts: Tuple[str, ...]
    evacuated: int
    relaunched: int
    parked: int
    lost: int

    def export(self) -> Dict[str, object]:
        return {
            "hosts": list(self.hosts),
            "evacuated": self.evacuated,
            "relaunched": self.relaunched,
            "parked": self.parked,
            "lost": self.lost,
        }


class Fleet:
    """A deterministic multi-host nymbox scheduler.

    ``policies.high_watermark``/``low_watermark`` are fractions of host
    RAM: a placement that pushes a host past ``high`` triggers evacuation
    of its newest residents until the host drops below ``low`` (or no
    other host can take them).
    """

    def __init__(
        self,
        timeline: Timeline,
        internet: Optional[Internet] = None,
        hosts: int = 4,
        policy=_UNSET,
        host_spec: Optional[HostSpec] = None,
        anon_spec: Optional[VmSpec] = None,
        comm_spec: Optional[VmSpec] = None,
        high_watermark=_UNSET,
        low_watermark=_UNSET,
        flash_clone: bool = True,
        policies: Optional[FleetPolicies] = None,
        tenancy: Optional[TenantRegistry] = None,
    ) -> None:
        if hosts < 1:
            raise FleetError(f"a fleet needs at least one host, got {hosts}")
        policies = self._resolve_policies(
            policies, policy=policy,
            high_watermark=high_watermark, low_watermark=low_watermark,
        )
        if not 0.0 < policies.low_watermark < policies.high_watermark <= 1.0:
            raise FleetError(
                f"watermarks must satisfy 0 < low < high <= 1: "
                f"low={policies.low_watermark}, high={policies.high_watermark}"
            )
        self.timeline = timeline
        self.internet = internet if internet is not None else Internet(timeline)
        self.policies = policies
        placement = policies.placement
        self.policy = (
            placement
            if isinstance(placement, PlacementPolicy)
            else make_policy(placement)
        )
        self.host_spec = host_spec or HostSpec()
        self.anon_spec = anon_spec or VmSpec.anonvm()
        self.comm_spec = comm_spec or VmSpec.commvm()
        self.high_watermark = policies.high_watermark
        self.low_watermark = policies.low_watermark
        self._flash_clone = flash_clone
        self.rng = timeline.fork_rng("fleet")

        # The tenant control plane: an explicit registry wins, then any
        # registry already attached to the timeline, then (only if the
        # policy set names tenants) a fresh one; otherwise the shared
        # no-op, so policy-free fleets pay and emit nothing.
        if tenancy is not None:
            self.tenancy = tenancy.attach()
        elif timeline.tenancy.active:
            self.tenancy = timeline.tenancy
        elif policies.tenants:
            self.tenancy = TenantRegistry(timeline).attach()
        else:
            self.tenancy = timeline.tenancy
        if policies.tenants:
            # Construction-time policies apply immediately, pre-traffic:
            # there is no boundary to reconcile against yet.
            self.tenancy.apply_initial(policies.tenants)

        # One base image for the whole cluster: built once, Merkle root
        # published once — exactly how a real fleet distributes it.  The
        # layer is read-only and identical for every fleet, so it is
        # memoized process-wide (rebuilding it re-hashes the whole tree).
        width = len(str(hosts - 1))
        self._id_width = width
        self._next_host_index = 0
        self.hosts: Dict[str, HostHandle] = {}
        # Host order is join order (initial hosts sort by id); hosts may
        # join (autoscale-up) or leave (drain + remove) after init, so
        # per-host admission verdicts are cached keyed on each host's
        # accounting token — a placement, removal, or KSM change bumps
        # only that host's token, so admission checks re-derive nothing
        # for untouched hosts.  Crashed/draining hosts are filtered by
        # flag before the cache is consulted.
        self._host_order: List[HostHandle] = []
        self._admission_cache: Dict[str, tuple] = {}
        self.add_hosts(hosts, announce=False)

        self.nymboxes: Dict[str, FleetNymbox] = {}
        self.parked: List[str] = []  # stored, awaiting capacity
        self.placements = 0
        self.evacuations = 0
        self.crashes = 0
        self.drains = 0
        self._seq = 0
        # One NymboxTemplate per image, shared by every host: the specs
        # are fixed per fleet, and a stable template object lets each
        # hypervisor reuse its per-template clone state across arrivals.
        self._templates: Dict[str, NymboxTemplate] = {}
        # Every materialize/destroy bumps this; place_many uses it to
        # detect that exactly one accounting action happened per planned
        # arrival (no evacuation, crash, or removal slipped in).
        self._accounting_epoch = 0
        # Predicted used-bytes delta of one placement: both guests'
        # page-rounded RAM (KSM savings and FS writes are zero at boot).
        self._used_delta_bytes = pages_to_bytes(
            bytes_to_pages(self.anon_spec.ram_bytes)
        ) + pages_to_bytes(bytes_to_pages(self.comm_spec.ram_bytes))
        obs = timeline.obs
        obs.event("fleet.created", hosts=hosts, policy=self.policy.name)
        obs.metrics.gauge("fleet.hosts").set(hosts)

        # The autoscaler tick is only scheduled when asked for, so fleets
        # without an AutoscalePolicy keep byte-identical journals.
        self.autoscaler = None
        if policies.autoscale is not None:
            from repro.tenancy.autoscale import Autoscaler

            self.autoscaler = Autoscaler(self, policies.autoscale).start()

    @staticmethod
    def _resolve_policies(
        policies: Optional[FleetPolicies], policy, high_watermark, low_watermark
    ) -> FleetPolicies:
        """Fold the deprecated loose kwargs into one FleetPolicies value."""
        legacy = {}
        if policy is not _UNSET:
            legacy["placement"] = policy
        if high_watermark is not _UNSET:
            legacy["high_watermark"] = high_watermark
        if low_watermark is not _UNSET:
            legacy["low_watermark"] = low_watermark
        if not legacy:
            return policies if policies is not None else FleetPolicies()
        if policies is not None:
            raise FleetError(
                "pass either policies=FleetPolicies(...) or the legacy "
                f"kwargs, not both: {sorted(legacy)}"
            )
        warnings.warn(
            "Fleet(policy=/high_watermark=/low_watermark=) is deprecated; "
            "pass policies=FleetPolicies(placement=..., high_watermark=..., "
            "low_watermark=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return replace(FleetPolicies(), **legacy)

    # -- host membership -------------------------------------------------------

    def add_hosts(self, count: int = 1, announce: bool = True) -> List[HostHandle]:
        """Bring ``count`` fresh hosts into service (autoscale-up path)."""
        base_layer, merkle_root = _shared_base_image()
        added: List[HostHandle] = []
        for _ in range(count):
            index = self._next_host_index
            self._next_host_index += 1
            width = max(self._id_width, len(str(index)))
            host_id = f"host-{index:0{width}d}"
            hv = Hypervisor(
                self.timeline,
                self.internet,
                host=self.host_spec,
                base_layer=base_layer,
                merkle_root=merkle_root,
                zygote_cache=self._flash_clone,
            )
            handle = HostHandle(host_id, hv)
            self.hosts[host_id] = handle
            self._host_order.append(handle)
            added.append(handle)
        if announce:
            obs = self.timeline.obs
            obs.metrics.gauge("fleet.hosts").set(len(self.hosts))
            obs.event("fleet.host_join", hosts=[h.host_id for h in added])
        return added

    def remove_host(self, host_id: str) -> None:
        """Retire an empty host (autoscale-down / post-drain path)."""
        host = self.hosts.get(host_id)
        if host is None:
            return
        if host.residents:
            raise FleetError(
                f"cannot remove {host_id}: {len(host.residents)} residents"
            )
        del self.hosts[host_id]
        self._host_order = [h for h in self._host_order if h.host_id != host_id]
        self._admission_cache.pop(host_id, None)
        obs = self.timeline.obs
        obs.metrics.gauge("fleet.hosts").set(len(self.hosts))
        obs.event("fleet.host_leave", host=host_id)

    def serving_hosts(self) -> List[HostHandle]:
        """Hosts that are up and accepting placements, in host order."""
        return [h for h in self._host_order if h.serving]

    # -- admission + placement -------------------------------------------------

    @property
    def need_ram_bytes(self) -> int:
        return self.anon_spec.ram_bytes + self.comm_spec.ram_bytes

    def host_list(self) -> List[HostHandle]:
        return list(self._host_order)

    @property
    def footprint_bytes(self) -> int:
        """RAM + writable-FS cost of one nymbox (the pressure a placement adds)."""
        return (
            self.need_ram_bytes
            + self.anon_spec.writable_fs_bytes
            + self.comm_spec.writable_fs_bytes
        )

    def _candidates(self, exclude: Optional[str] = None) -> List[HostHandle]:
        """Hosts that can admit one more nymbox, watermark-aware.

        Prefer hosts that stay under the high watermark after the
        placement (otherwise the newest nym would bounce straight back
        off); when the whole fleet is that full, fall back to anyone with
        raw RAM headroom and let evacuation rebalance.

        Verdicts are cached per host keyed on its accounting token: an
        admission check after a placement recomputes only the one host
        that changed instead of re-deriving the whole fleet's watermark
        arithmetic per arrival.
        """
        need = self.need_ram_bytes
        footprint = self.footprint_bytes
        high = self.high_watermark
        cache = self._admission_cache
        admissible: List[HostHandle] = []
        calm: List[HostHandle] = []
        for h in self._host_order:
            if h.crashed or h.draining or h.host_id == exclude:
                continue
            token = h.hypervisor.accounting_token()
            entry = cache.get(h.host_id)
            if entry is None or entry[0] != token:
                snap = h.memory_snapshot()
                used = snap.used_bytes
                free_ram = h.total_bytes - (used - snap.fs_bytes)
                admits = free_ram >= need
                calm_ok = admits and (used + footprint) / h.total_bytes <= high
                entry = (token, admits, calm_ok)
                cache[h.host_id] = entry
            if entry[1]:
                admissible.append(h)
                if entry[2]:
                    calm.append(h)
        return calm or admissible

    def _tenant_admission(self, tenant: str) -> Optional[str]:
        """Peek this tenant's quota/rate verdict for one more nym."""
        return self.tenancy.admission_reason(tenant, self.need_ram_bytes)

    def _note_rejected(self, req: PlacementRequest, reason: str) -> None:
        obs = self.timeline.obs
        if reason == REASON_CAPACITY:
            obs.metrics.counter("fleet.admission_rejected").inc()
        self.tenancy.note_rejected(req.tenant, reason)
        if req.tenant:
            obs.event(
                "tenancy.reject",
                nym=req.name,
                tenant=req.tenant,
                reason=reason,
            )

    @staticmethod
    def _rejection_error(req: PlacementRequest, reason: str) -> FleetCapacityError:
        """The typed error for a tenant-verdict rejection (quota or rate)."""
        if reason == REASON_QUOTA:
            return TenantQuotaError(
                f"tenant {req.tenant!r} is over quota; rejected {req.name!r}"
            )
        return TenantRateLimitError(
            f"tenant {req.tenant!r} launch bucket is dry; rejected {req.name!r}"
        )

    def place(self, name: str, image_id: str, tenant: str = "") -> FleetNymbox:
        """Admit and place a new nymbox, or raise :class:`FleetCapacityError`.

        Tenant verdicts come first (quota, then launch rate), raising the
        :class:`TenantQuotaError` / :class:`TenantRateLimitError`
        subclasses; capacity is checked last.
        """
        if name in self.nymboxes:
            raise FleetError(f"nym {name!r} is already placed")
        req = PlacementRequest(name, image_id, tenant)
        reason = self._tenant_admission(tenant)
        if reason is not None:
            self._note_rejected(req, reason)
            raise self._rejection_error(req, reason)
        self.tenancy.consume_launch(tenant)
        host = self.policy.choose(self._candidates(), image_id)
        if host is None:
            self._note_rejected(req, REASON_CAPACITY)
            raise FleetCapacityError(
                f"no host can admit {name!r} ({self.need_ram_bytes // MIB} MiB)"
            )
        self._seq += 1
        box = self._materialize(
            name, image_id, host, seq=self._seq, advance=True, tenant=tenant
        )
        self.placements += 1
        self.tenancy.note_admitted(tenant)
        obs = self.timeline.obs
        obs.metrics.counter("fleet.placements").inc()
        obs.event("fleet.place", nym=name, host=host.host_id,
                  image=image_id, policy=self.policy.name)
        self._relieve_pressure(host)
        return box

    def place_many(
        self,
        requests: Iterable,
        on_reject: str = "raise",
    ) -> List[PlacementResult]:
        """Admit and place a whole arrival wave, batched.

        Byte-identical-journal-equivalent to calling :meth:`place` once
        per request in order (``on_reject="raise"``), or to wrapping each
        call in ``try/except FleetCapacityError`` (``on_reject="skip"``,
        where rejected requests yield a falsy :class:`PlacementRejection`
        carrying the reason — ``capacity``, ``quota``, or ``rate``).  The
        wave is *planned* in one pass — per-host accounting pulled into
        numpy arrays once, tenant verdicts simulated against running
        counters, the policy's ``choose_batch`` assigning hosts against
        running sums — then executed through the exact sequential
        machinery.

        Execution is verified per arrival: the live tenant verdict must
        match the plan's, the chosen host's used bytes must land on the
        plan's prediction, and exactly one accounting action may have
        happened.  Any deviation (pressure evacuation, a fault firing
        mid-boot, a token-bucket refill, KSM drift) discards the
        remaining plan and replans from live state, so equivalence never
        depends on the predictions being right — only rejections and
        host choices ever come from the plan, and those are re-derived
        whenever state diverges.
        """
        if on_reject not in ("raise", "skip"):
            raise FleetError(f"unknown on_reject mode {on_reject!r}")
        reqs = [_as_request(item) for item in requests]
        results: List[PlacementResult] = []
        obs = self.timeline.obs
        pos = 0
        while pos < len(reqs):
            plan = self._plan_wave(reqs[pos:])
            diverged = False
            for offset, (host_id, predicted_used, planned_reason) in enumerate(plan):
                req = reqs[pos + offset]
                if req.name in self.nymboxes:
                    raise FleetError(f"nym {req.name!r} is already placed")
                live_reason = self._tenant_admission(req.tenant)
                if live_reason != planned_reason:
                    # The plan's tenant verdict went stale (bucket refill,
                    # quota freed by an evacuation): replan from here.
                    # Nothing was executed for this arrival, so progress
                    # is guaranteed — a fresh plan's first verdict is
                    # computed from the same live state it runs against.
                    pos += offset
                    diverged = True
                    break
                if live_reason is not None:
                    self._note_rejected(req, live_reason)
                    if on_reject == "raise":
                        raise self._rejection_error(req, live_reason)
                    results.append(
                        PlacementRejection(
                            req.name, req.image_id, req.tenant, live_reason
                        )
                    )
                    continue
                self.tenancy.consume_launch(req.tenant)
                if host_id is None:
                    self._note_rejected(req, REASON_CAPACITY)
                    if on_reject == "raise":
                        raise FleetCapacityError(
                            f"no host can admit {req.name!r} "
                            f"({self.need_ram_bytes // MIB} MiB)"
                        )
                    results.append(
                        PlacementRejection(
                            req.name, req.image_id, req.tenant, REASON_CAPACITY
                        )
                    )
                    continue
                host = self.hosts[host_id]
                epoch_before = self._accounting_epoch
                self._seq += 1
                box = self._materialize(
                    req.name, req.image_id, host, seq=self._seq, advance=True,
                    tenant=req.tenant,
                )
                self.placements += 1
                self.tenancy.note_admitted(req.tenant)
                obs.metrics.counter("fleet.placements").inc()
                obs.event("fleet.place", nym=req.name, host=host.host_id,
                          image=req.image_id, policy=self.policy.name)
                self._relieve_pressure(host)
                results.append(box)
                if (
                    self._accounting_epoch != epoch_before + 1
                    or host.used_bytes != predicted_used
                ):
                    pos += offset + 1
                    diverged = True
                    break
            if not diverged:
                pos += len(plan)
        return results

    def _plan_wave(
        self, requests: Sequence[PlacementRequest]
    ) -> List[Tuple[Optional[str], int, Optional[str]]]:
        """Plan ``(host_id, predicted used bytes, tenant verdict)`` per request.

        Tenant verdicts are simulated against running per-tenant counters
        seeded from the registry's live accounts (quota-rejected arrivals
        never reach the placement policy); host choices come from the
        policy's batch planner.  Policies without batch support plan one
        arrival at a time through the sequential reference path — still
        verified, just not batched.
        """
        sim: Dict[str, List[float]] = {}

        def verdict(req: PlacementRequest) -> Optional[str]:
            tenant = req.tenant
            if not tenant:
                return None
            policy = self.tenancy.policy_for(tenant)
            if policy.unlimited:
                return None
            state = sim.get(tenant)
            if state is None:
                state = list(self.tenancy.admission_snapshot(tenant))
                sim[tenant] = state
            quota = policy.quota
            if quota.max_nyms is not None and state[0] + 1 > quota.max_nyms:
                return REASON_QUOTA
            if (
                quota.max_ram_bytes is not None
                and state[1] + self.need_ram_bytes > quota.max_ram_bytes
            ):
                return REASON_QUOTA
            if policy.rate.launch_rate_per_s and state[2] < 1.0:
                return REASON_RATE
            state[0] += 1
            state[1] += self.need_ram_bytes
            state[2] -= 1.0
            return None

        if not self.policy.supports_batch:
            req = requests[0]
            reason = verdict(req)
            if reason is not None:
                return [(None, 0, reason)]
            host = self.policy.choose(self._candidates(), req.image_id)
            if host is None:
                return [(None, 0, None)]
            return [(host.host_id, host.used_bytes + self._used_delta_bytes, None)]

        verdicts = [verdict(req) for req in requests]
        admitted = [
            req for req, reason in zip(requests, verdicts) if reason is None
        ]
        picks: List[Optional[int]] = []
        predicted = None
        if admitted:
            view = WaveView(
                self._host_order,
                need=self.need_ram_bytes,
                footprint=self.footprint_bytes,
                used_delta=self._used_delta_bytes,
                high_watermark=self.high_watermark,
            )
            predicted = view.used.copy()
            picks = self.policy.choose_batch(view, admitted)
        plan: List[Tuple[Optional[str], int, Optional[str]]] = []
        pick_iter = iter(picks)
        for reason in verdicts:
            if reason is not None:
                plan.append((None, 0, reason))
                continue
            pick = next(pick_iter)
            if pick is None:
                plan.append((None, 0, None))
            else:
                predicted[pick] += self._used_delta_bytes
                plan.append(
                    (self._host_order[pick].host_id, int(predicted[pick]), None)
                )
        return plan

    def _materialize(
        self, name: str, image_id: str, host: HostHandle, seq: int,
        advance: bool, extra_dirty_bytes: int = 0, moves: int = 0,
        tenant: str = "",
    ) -> FleetNymbox:
        """Create, wire, and boot the VM pair on ``host``.

        The pair launches through the host's zygote cache: one template
        per (spec, image) flavour per host, shared by every arrival and
        by evacuation relaunches (which therefore clone instead of
        cold-booting on the target host).
        """
        hv = host.hypervisor
        template = self._templates.get(image_id)
        if template is None:
            template = hv.nymbox_template(
                self.anon_spec, self.comm_spec, image_id=image_id
            )
            self._templates[image_id] = template
        anonvm, commvm, _wire = hv.flash_clone(template, name)
        # The pair boots in parallel, so it costs max(anon, comm) = anon.
        anonvm.boot(jitter_rng=self.rng, advance=advance)
        commvm.boot(jitter_rng=self.rng, advance=False)
        if extra_dirty_bytes:
            anonvm.touch_memory(extra_dirty_bytes)
        box = FleetNymbox(
            name=name, image_id=image_id, host_id=host.host_id,
            anonvm=anonvm, commvm=commvm, seq=seq, tenant=tenant,
            extra_dirty_bytes=extra_dirty_bytes, moves=moves,
        )
        self.nymboxes[name] = box
        host.add_resident(box)
        self._accounting_epoch += 1
        self.tenancy.note_placed(tenant, box.ram_bytes)
        self.timeline.obs.metrics.gauge("fleet.nyms_resident").set(len(self.nymboxes))
        return box

    def touch(self, name: str, dirty_bytes: int) -> None:
        """Workload churn: the nym's AnonVM dirties private pages."""
        box = self.nymboxes[name]
        box.anonvm.touch_memory(dirty_bytes)
        box.extra_dirty_bytes += dirty_bytes

    def remove(self, name: str) -> None:
        """Discard a nymbox entirely (the amnesia path)."""
        box = self.nymboxes.pop(name, None)
        if box is None:
            return
        host = self.hosts[box.host_id]
        host.pop_resident(name)
        self._accounting_epoch += 1
        self.tenancy.note_removed(box.tenant, box.ram_bytes)
        if not host.crashed:
            host.hypervisor.destroy_vm(box.anonvm)
            host.hypervisor.destroy_vm(box.commvm)
        self.timeline.obs.metrics.gauge("fleet.nyms_resident").set(len(self.nymboxes))

    # -- evacuation (§3.5 store → relaunch) -----------------------------------

    def _relieve_pressure(self, host: HostHandle) -> None:
        """Evacuate newest residents until ``host`` is below the low mark."""
        if host.pressure <= self.high_watermark:
            return
        obs = self.timeline.obs
        obs.event("fleet.pressure", host=host.host_id,
                  pressure=round(host.pressure, 4))
        while host.pressure > self.low_watermark and host.residents:
            victim = max(host.residents.values(), key=lambda b: b.seq)
            if not self._evacuate(victim, advance=True):
                break  # nowhere to go; stop rather than thrash

    def _evacuate(self, box: FleetNymbox, advance: bool) -> bool:
        """Store ``box`` off its host and relaunch it elsewhere.

        Returns False when every retry found no capacity — the nym stays
        parked in storage (still recoverable, just not resident).
        """
        source = self.hosts[box.host_id]
        obs = self.timeline.obs
        reason = (
            "crash" if source.crashed
            else "drain" if source.draining
            else "pressure"
        )
        obs.event("fleet.evacuate", nym=box.name, source=source.host_id,
                  reason=reason)
        # Store step: the quasi-persistent state (its churned pages) is
        # what the relaunch will carry over; then the source pair dies.
        carried_dirty = box.extra_dirty_bytes
        source.pop_resident(box.name)
        self._accounting_epoch += 1
        del self.nymboxes[box.name]
        self.tenancy.note_removed(box.tenant, box.ram_bytes)
        self.tenancy.note_evacuated(box.tenant)
        if not source.crashed:
            source.hypervisor.destroy_vm(box.anonvm)
            source.hypervisor.destroy_vm(box.commvm)
        self.evacuations += 1
        obs.metrics.counter("fleet.evacuations").inc()

        def relaunch() -> FleetNymbox:
            target = self.policy.choose(
                self._candidates(exclude=source.host_id), box.image_id
            )
            if target is None:
                raise FleetCapacityError(
                    f"no host can take evacuated nym {box.name!r}"
                )
            return self._materialize(
                box.name, box.image_id, target, seq=box.seq, advance=advance,
                extra_dirty_bytes=carried_dirty, moves=box.moves + 1,
                tenant=box.tenant,
            )

        try:
            relocated = retry_call(
                self.timeline, relaunch,
                policy=RELAUNCH_RETRY if advance else CRASH_RETRY,
                retryable=FleetCapacityError,
                site="fleet.relaunch",
            )
        except RetryExhaustedError:
            self.parked.append(box.name)
            obs.metrics.counter("fleet.nyms_parked").inc()
            obs.event("fleet.parked", nym=box.name)
            return False
        obs.event("fleet.relaunched", nym=box.name, source=source.host_id,
                  target=relocated.host_id, moves=relocated.moves)
        return True

    # -- host failure ----------------------------------------------------------

    def crash_host(self, host_id: str = "") -> Optional[str]:
        """A host dies; every resident nym evacuates (fault kind
        ``fleet.host_crash``).  Empty ``host_id`` picks the live host with
        the most residents (maximum blast radius), deterministically.
        """
        if host_id:
            host = self.hosts.get(host_id)
        else:
            live = [h for h in self.host_list() if not h.crashed]
            host = max(live, key=lambda h: (len(h.residents), h.host_id)) if live else None
        if host is None or host.crashed:
            return None
        host.crashed = True
        self._accounting_epoch += 1
        self.crashes += 1
        obs = self.timeline.obs
        obs.metrics.counter("fleet.host_crashes").inc()
        obs.event("fleet.host_crash", host=host.host_id,
                  residents=len(host.residents))
        # RAM is gone with the power; account it off without secure erase.
        for vm in list(host.hypervisor.vms()):
            if vm.state.value in ("running", "paused"):
                vm.crash()
        # Evacuate survivors' stored state oldest-first; relaunch boots
        # overlap (advance=False) — the cluster restarts them in parallel.
        for box in sorted(host.residents.values(), key=lambda b: b.seq):
            self._evacuate(box, advance=False)
        return host.host_id

    # -- rolling drain / upgrade ----------------------------------------------

    def drain_host(
        self, host_id: str = "", advance: bool = True, remove: bool = False
    ) -> Optional[str]:
        """Take one host out of service, live-evacuating its residents.

        The drain reuses the §3.5 store→relaunch machinery: each resident
        is stored and relaunched on a serving host (oldest first), with
        the draining host excluded from candidacy.  ``advance=False`` is
        the timeline-callback-safe variant (fault kind
        ``fleet.host_drain``, autoscale scale-down): relaunch boots
        overlap instead of sleeping.  Empty ``host_id`` picks the serving
        host with the most residents, deterministically.  Returns the
        drained host id, or ``None`` if no host was eligible.
        """
        if host_id:
            host = self.hosts.get(host_id)
        else:
            serving = self.serving_hosts()
            host = (
                max(serving, key=lambda h: (len(h.residents), h.host_id))
                if serving
                else None
            )
        if host is None or host.crashed or host.draining:
            return None
        host.draining = True
        self.drains += 1
        obs = self.timeline.obs
        obs.metrics.counter("fleet.host_drains").inc()
        obs.event("fleet.host_drain", host=host.host_id,
                  residents=len(host.residents))
        # Snapshot first: evacuations mutate ``residents``, and a host
        # crash firing mid-drain (boots advance time) may beat us to
        # some of them — the identity check skips anything already moved.
        for box in sorted(host.residents.values(), key=lambda b: b.seq):
            if self.nymboxes.get(box.name) is not box:
                continue
            self._evacuate(box, advance=advance)
        if remove:
            self.remove_host(host.host_id)
        return host.host_id

    def undrain_host(self, host_id: str) -> None:
        """Return a drained host to service (post-upgrade)."""
        host = self.hosts.get(host_id)
        if host is None or not host.draining:
            return
        host.draining = False
        self.timeline.obs.event("fleet.host_undrain", host=host_id)

    def rolling_drain(
        self,
        host_ids: Optional[Sequence[str]] = None,
        count: int = 0,
        upgrade_s: float = 0.0,
        return_to_service: bool = True,
    ) -> DrainReport:
        """Drain hosts one at a time (the rolling-upgrade loop).

        Each host is drained, held out of service for ``upgrade_s``
        simulated seconds (the upgrade window), then returned to service
        before the next host starts — so cluster capacity only ever dips
        by one host.  ``host_ids=None`` picks the first ``count`` serving
        hosts in host order.  The report accounts for every evacuated
        nym: relaunched elsewhere, parked (stored, awaiting capacity), or
        lost — which the machinery guarantees never happens (evacuation
        always stores before the source dies).
        """
        if host_ids is None:
            serving = [h.host_id for h in self.serving_hosts()]
            host_ids = serving[: count or len(serving)]
        evacuated = relaunched = parked = lost = 0
        drained: List[str] = []
        for host_id in host_ids:
            host = self.hosts.get(host_id)
            if host is None or not host.serving:
                continue
            names = [
                b.name
                for b in sorted(host.residents.values(), key=lambda b: b.seq)
            ]
            if self.drain_host(host_id, advance=True) is None:
                continue
            drained.append(host_id)
            evacuated += len(names)
            for name in names:
                if name in self.nymboxes:
                    relaunched += 1
                elif name in self.parked:
                    parked += 1
                else:
                    lost += 1
            if upgrade_s > 0:
                self.timeline.sleep(upgrade_s)
            if return_to_service:
                self.undrain_host(host_id)
        report = DrainReport(
            hosts=tuple(drained), evacuated=evacuated,
            relaunched=relaunched, parked=parked, lost=lost,
        )
        self.timeline.obs.event(
            "fleet.drain_complete",
            hosts=list(report.hosts),
            evacuated=report.evacuated,
            relaunched=report.relaunched,
            parked=report.parked,
            lost=report.lost,
        )
        return report

    # -- accounting -------------------------------------------------------------

    def settle_ksm(self) -> None:
        """Run every host's KSM scanner to convergence (for measurement)."""
        for host in self.host_list():
            if not host.crashed:
                host.hypervisor.ksm.run_to_completion()

    def host_image_pairs(self) -> int:
        """How many (host, image) colonies exist — the KSM cost driver."""
        return sum(len(h.images()) for h in self.host_list() if not h.crashed)

    def stats(self) -> FleetStats:
        live = [h for h in self.host_list() if not h.crashed]
        used = sum(h.used_bytes for h in live)
        saved = sum(h.ksm_saved_bytes for h in live)
        stats = FleetStats(
            hosts=len(self.hosts),
            hosts_up=len(live),
            nyms_resident=len(self.nymboxes),
            nyms_parked=len(self.parked),
            placements=self.placements,
            evacuations=self.evacuations,
            host_crashes=self.crashes,
            used_bytes=used,
            total_bytes=sum(h.total_bytes for h in live),
            ksm_saved_bytes=saved,
            host_image_pairs=self.host_image_pairs(),
            hosts_draining=sum(1 for h in live if h.draining),
            host_drains=self.drains,
        )
        obs = self.timeline.obs
        obs.metrics.gauge("fleet.used_bytes").set(used)
        obs.metrics.gauge("fleet.ksm_saved_bytes").set(saved)
        return stats

    def __repr__(self) -> str:
        return (
            f"Fleet(hosts={len(self.hosts)}, policy={self.policy.name}, "
            f"resident={len(self.nymboxes)}, parked={len(self.parked)})"
        )
