"""`run_fleet`: the cluster-scale capacity scenario behind `repro fleet`.

Launches ~1000 nymboxes over 64 simulated hosts from one seeded arrival
stream, injects host-crash faults, and measures what each placement
policy does to cluster RAM — the paper's §5.2 samepage-merging effect
promoted to a fleet-level placement question.  Every policy replays the
*identical* workload on its own fresh :class:`Timeline` with the same
seed, so the comparison isolates placement alone; the policy under test
additionally exports a byte-reproducible event journal.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FleetCapacityError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fleet.fleet import Fleet, FleetStats
from repro.fleet.placement import PLACEMENT_POLICIES
from repro.fleet.shard import (
    ShardConfig,
    ShardedRunResult,
    combined_spool_bytes,
    resume_sharded_fleet,
    run_sharded_fleet,
)
from repro.sim.clock import Timeline
from repro.tenancy.policy import FleetPolicies
from repro.vmm.vm import MIB
from repro.workloads.fleet import fleet_workload


@dataclass(frozen=True)
class PolicyResult:
    """One policy's end-of-run accounting."""

    policy: str
    stats: FleetStats
    rejected: int
    sim_seconds: float
    journal_events: int

    def export(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "rejected": self.rejected,
            "sim_seconds": round(self.sim_seconds, 3),
            "journal_events": self.journal_events,
            **self.stats.export(),
        }


@dataclass
class FleetReport:
    """The BENCH_fleet.json payload."""

    seed: int
    hosts: int
    nyms: int
    primary_policy: str
    results: List[PolicyResult] = field(default_factory=list)

    def result(self, policy: str) -> PolicyResult:
        for r in self.results:
            if r.policy == policy:
                return r
        raise KeyError(policy)

    @property
    def ksm_aware_beats_first_fit(self) -> bool:
        try:
            return (
                self.result("ksm-aware").stats.ksm_saved_bytes
                > self.result("first-fit").stats.ksm_saved_bytes
            )
        except KeyError:
            return False

    def export(self) -> Dict[str, object]:
        return {
            "bench": "fleet",
            "seed": self.seed,
            "hosts": self.hosts,
            "nyms": self.nyms,
            "primary_policy": self.primary_policy,
            "ksm_aware_beats_first_fit": self.ksm_aware_beats_first_fit,
            "results": [r.export() for r in self.results],
        }

    def summary(self) -> str:
        lines = [
            f"fleet bench: {self.nyms} nyms over {self.hosts} hosts "
            f"(seed {self.seed}, primary policy {self.primary_policy})",
            f"{'policy':<14} {'resident':>8} {'parked':>6} {'evac':>5} "
            f"{'crashes':>7} {'used MiB':>10} {'ksm MiB':>9} {'colonies':>8}",
        ]
        for r in self.results:
            s = r.stats
            lines.append(
                f"{r.policy:<14} {s.nyms_resident:>8} {s.nyms_parked:>6} "
                f"{s.evacuations:>5} {s.host_crashes:>7} "
                f"{s.used_bytes / MIB:>10.0f} {s.ksm_saved_bytes / MIB:>9.0f} "
                f"{s.host_image_pairs:>8}"
            )
        verdict = "yes" if self.ksm_aware_beats_first_fit else "NO"
        lines.append(f"ksm-aware saves more RAM than first-fit: {verdict}")
        return "\n".join(lines)


def _run_policy(
    policy: str,
    seed: int,
    hosts: int,
    nyms: int,
    host_crashes: int,
    journal_path: Optional[str],
    idle_s: float = 0.0,
    flash_clone: bool = True,
    base_policies: Optional[FleetPolicies] = None,
) -> PolicyResult:
    """One complete fleet run for one policy, on its own timeline."""
    timeline = Timeline(seed=seed)
    base = base_policies if base_policies is not None else FleetPolicies()
    fleet = Fleet(
        timeline, hosts=hosts,
        policies=base.with_placement(policy),
        flash_clone=flash_clone,
    )
    arrivals = fleet_workload(timeline.fork_rng("fleet.workload"), nyms)

    # Faults spread across the expected run length (arrivals advance time
    # by interarrival gaps plus each anon boot, ~10 s per nym).
    expected_s = max(60.0, nyms * 10.5)
    plan = FaultPlan.seeded(
        timeline.fork_rng("fleet.faults"),
        duration_s=expected_s,
        relay_churns=0, circuit_teardowns=0, link_flaps=0,
        upload_failures=0, vm_crashes=0,
        host_crashes=host_crashes,
    )
    FaultInjector(timeline, plan).arm(manager=fleet)

    rejected = 0
    for arrival in arrivals:
        timeline.sleep(arrival.interarrival_s)
        try:
            fleet.place(arrival.name, arrival.image_id)
        except FleetCapacityError:
            rejected += 1
            continue
        if arrival.churn_bytes and arrival.name in fleet.nymboxes:
            fleet.touch(arrival.name, arrival.churn_bytes)

    if idle_s:
        timeline.sleep(idle_s)
    fleet.settle_ksm()
    stats = fleet.stats()
    timeline.obs.event(
        "fleet.run_complete", policy=policy,
        resident=stats.nyms_resident, ksm_saved_bytes=stats.ksm_saved_bytes,
    )
    journal_events = timeline.obs.journal.count()
    if journal_path:
        timeline.obs.journal.write_jsonl(journal_path)
    return PolicyResult(
        policy=policy,
        stats=stats,
        rejected=rejected,
        sim_seconds=timeline.now,
        journal_events=journal_events,
    )


def run_fleet(
    seed: int = 0,
    hosts: int = 64,
    nyms: int = 1000,
    policy: str = "ksm-aware",
    host_crashes: int = 2,
    compare: bool = True,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = "BENCH_fleet.json",
    idle_s: float = 0.0,
    flash_clone: bool = True,
    policies: Optional[FleetPolicies] = None,
) -> FleetReport:
    """Run the fleet scenario; compare all policies on the same workload.

    The ``policy`` under test runs first and owns the exported journal;
    with ``compare`` the remaining registered policies replay the same
    seed for the savings table.  ``policies`` (e.g. from
    ``--tenant-config``) carries tenant/autoscale policy into every run;
    its placement field is overridden per compared policy.
    """
    compared = [policy] + (
        [p for p in sorted(PLACEMENT_POLICIES) if p != policy] if compare else []
    )
    report = FleetReport(seed=seed, hosts=hosts, nyms=nyms, primary_policy=policy)
    for name in compared:
        report.results.append(
            _run_policy(
                name, seed=seed, hosts=hosts, nyms=nyms,
                host_crashes=host_crashes,
                journal_path=journal_path if name == policy else None,
                idle_s=idle_s,
                flash_clone=flash_clone,
                base_policies=policies,
            )
        )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


# -- the sharded scale path ---------------------------------------------------


@dataclass
class ShardedFleetReport:
    """The BENCH_fleet.json payload for a sharded (scale-out) run.

    On top of the simulation-side accounting this records the two
    capacity numbers the scale story is about: **nyms per host** the
    cluster sustains (resident / live hosts at the end of the run) and
    **arrivals per wall-clock second** the simulator pushes through the
    sharded path.  Wall-clock figures live only in this report — never
    in the journals, which must stay byte-reproducible.  The
    ``environment`` block (worker processes used, cores available)
    travels with every wall-clock number so a trajectory measured on a
    single-core runner is never mistaken for a parallel speedup claim.
    """

    result: ShardedRunResult
    wall_seconds: float
    resumed: bool = False
    procs: int = 1
    trajectory: List[Dict[str, object]] = field(default_factory=list)

    @property
    def nyms_per_host(self) -> float:
        merged = self.result.merged
        hosts_up = merged["hosts_up"] or 1
        return merged["nyms_resident"] / hosts_up

    @property
    def arrivals_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.result.config.nyms / self.wall_seconds

    def export(self) -> Dict[str, object]:
        payload = {
            "bench": "fleet-sharded",
            **self.result.export(),
            "resumed": self.resumed,
            "procs": self.procs,
            "environment": bench_environment(self.procs),
            "wall_seconds": round(self.wall_seconds, 3),
            "nyms_per_host": round(self.nyms_per_host, 2),
            "arrivals_per_sec": round(self.arrivals_per_sec, 1),
        }
        if self.trajectory:
            payload["scale_trajectory"] = self.trajectory
        return payload

    def summary(self) -> str:
        config = self.result.config
        merged = self.result.merged
        lines = [
            f"sharded fleet: {config.nyms} nyms over {config.shards} shards x "
            f"{config.hosts_per_shard} hosts (seed {config.seed}, "
            f"policy {config.policy}, epoch {config.epoch_s:g} s, "
            f"procs {self.procs})"
            + (" [resumed]" if self.resumed else ""),
            f"  epochs {self.result.epochs}, resident {merged['nyms_resident']}, "
            f"parked {merged['nyms_parked']}, rejected {self.result.rejected}, "
            f"evacuations {merged['evacuations']}, crashes {merged['host_crashes']}",
            f"  RAM {merged['used_bytes'] / MIB:.0f} MiB used, "
            f"{merged['ksm_saved_bytes'] / MIB:.0f} MiB KSM-saved across "
            f"{merged['hosts_up']} live hosts",
            f"  sustained {self.nyms_per_host:.1f} nyms/host, "
            f"{self.arrivals_per_sec:.0f} arrivals/s wall, "
            f"{self.result.journal_events} journal events streamed",
        ]
        if self.trajectory:
            lines.append(
                f"  {'shards':>6} {'procs':>5} {'hosts':>6} {'resident':>8} "
                f"{'nyms/host':>9} {'arrivals/s':>10}"
            )
            for point in self.trajectory:
                lines.append(
                    f"  {point['shards']:>6} {point.get('procs', 1):>5} "
                    f"{point['hosts']:>6} "
                    f"{point['nyms_resident']:>8} {point['nyms_per_host']:>9.1f} "
                    f"{point['arrivals_per_sec']:>10.0f}"
                )
        return "\n".join(lines)


def run_fleet_sharded(
    seed: int = 0,
    shards: int = 4,
    hosts_per_shard: int = 16,
    nyms: int = 2000,
    policy: str = "ksm-aware",
    epoch_s: float = 120.0,
    host_crashes: int = 0,
    spool_dir: str = "fleet-spool",
    checkpoint_dir: Optional[str] = None,
    stop_after_epoch: Optional[int] = None,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = "BENCH_fleet.json",
    flash_clone: bool = True,
    scale_counts: Optional[List[int]] = None,
    procs: int = 1,
) -> ShardedFleetReport:
    """The scale-out scenario behind ``repro fleet --shards N``.

    Runs one sharded fleet (optionally checkpointing every epoch and
    optionally stopping early for the kill half of kill/resume) and, if
    ``scale_counts`` is given, replays the same seed and nym count
    across those shard counts to chart the capacity trajectory.
    ``procs`` spreads the shards over that many spawned OS workers (an
    executor choice only — the journal bytes are identical at any
    value); the trajectory then charts every shard count at one worker
    *and* at ``procs`` workers, so BENCH_fleet.json carries the measured
    serial-vs-parallel curve, not a claim.
    """
    config = ShardConfig(
        seed=seed, shards=shards, hosts_per_shard=hosts_per_shard, nyms=nyms,
        policy=policy, epoch_s=epoch_s, host_crashes=host_crashes,
        flash_clone=flash_clone,
    )
    start = time.perf_counter()
    result = run_sharded_fleet(
        config, spool_dir,
        checkpoint_dir=checkpoint_dir, stop_after_epoch=stop_after_epoch,
        procs=procs,
    )
    report = ShardedFleetReport(
        result=result, wall_seconds=time.perf_counter() - start, procs=procs
    )
    if scale_counts:
        report.trajectory = scale_trajectory(
            seed=seed, nyms=nyms, shard_counts=scale_counts,
            hosts_per_shard=hosts_per_shard, policy=policy, epoch_s=epoch_s,
            spool_root=spool_dir + "-scale", flash_clone=flash_clone,
            procs_counts=sorted({1, procs}),
        )
    if journal_path:
        _write_combined_spools(result.spool_paths, journal_path)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def resume_fleet_sharded(
    checkpoint_dir: str,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = "BENCH_fleet.json",
    procs: int = 1,
) -> ShardedFleetReport:
    """Resume a killed sharded run (``repro fleet --resume DIR``).

    ``procs`` is free to differ from the killed run's executor — a
    checkpoint is mode-neutral, so a serial run resumes parallel and
    vice versa with identical bytes.
    """
    start = time.perf_counter()
    _, result = resume_sharded_fleet(checkpoint_dir, procs=procs)
    report = ShardedFleetReport(
        result=result, wall_seconds=time.perf_counter() - start, resumed=True,
        procs=procs,
    )
    if journal_path:
        _write_combined_spools(result.spool_paths, journal_path)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def bench_environment(procs: int = 1) -> Dict[str, object]:
    """The execution-environment block wall-clock numbers travel with.

    A speedup figure is meaningless without knowing how many workers ran
    on how many cores — single-core runners legitimately show parallel
    runs *slower* (spawn overhead, no parallelism), and the CI gates key
    off ``cpu_count`` to skip the speedup assertion there while still
    enforcing byte-identity.
    """
    return {
        "procs": procs,
        "cpu_count": os.cpu_count() or 1,
    }


def scale_trajectory(
    seed: int,
    nyms: int,
    shard_counts: List[int],
    hosts_per_shard: int = 16,
    policy: str = "ksm-aware",
    epoch_s: float = 120.0,
    spool_root: str = "fleet-spool-scale",
    flash_clone: bool = True,
    procs_counts: Optional[List[int]] = None,
) -> List[Dict[str, object]]:
    """One trajectory point per (shard count, worker count), same seed.

    Records what the scale section of BENCH_fleet.json is for: the max
    sustainable nyms/host and the wall-clock arrivals/sec at each shard
    count, so the scale-out curve is a measured artifact, not a claim.
    ``procs_counts`` adds the executor dimension — each shard count is
    replayed under each worker count (capped at the shard count, since
    extra workers would idle), and every point carries its ``procs`` and
    environment block so the serial and parallel columns are comparable.
    """
    points: List[Dict[str, object]] = []
    for count in shard_counts:
        for procs in procs_counts or [1]:
            effective_procs = max(1, min(procs, count))
            if effective_procs != procs and effective_procs in (
                procs_counts or [1]
            ):
                continue  # the capped point already exists; don't duplicate
            config = ShardConfig(
                seed=seed, shards=count, hosts_per_shard=hosts_per_shard,
                nyms=nyms, policy=policy, epoch_s=epoch_s,
                flash_clone=flash_clone,
            )
            spool_dir = os.path.join(
                spool_root, f"shards-{count:02d}-procs-{effective_procs:02d}"
            )
            start = time.perf_counter()
            result = run_sharded_fleet(
                config, spool_dir, procs=effective_procs
            )
            wall = time.perf_counter() - start
            merged = result.merged
            hosts_up = merged["hosts_up"] or 1
            points.append(
                {
                    "shards": count,
                    "procs": effective_procs,
                    "environment": bench_environment(effective_procs),
                    "hosts": count * hosts_per_shard,
                    "nyms": nyms,
                    "epochs": result.epochs,
                    "nyms_resident": merged["nyms_resident"],
                    "rejected": result.rejected,
                    "nyms_per_host": round(merged["nyms_resident"] / hosts_up, 2),
                    "arrivals_per_sec": round(nyms / wall, 1) if wall > 0 else 0.0,
                    "wall_seconds": round(wall, 3),
                    "journal_events": result.journal_events,
                }
            )
    return points


def _write_combined_spools(spool_paths: List[str], journal_path: str) -> int:
    """Write the canonical concatenation (coordinator first, shards in
    id order) — the byte-comparable whole run."""
    data = combined_spool_bytes(spool_paths)
    with open(journal_path, "wb") as out:
        out.write(data)
    return len(data)
