"""`run_fleet`: the cluster-scale capacity scenario behind `repro fleet`.

Launches ~1000 nymboxes over 64 simulated hosts from one seeded arrival
stream, injects host-crash faults, and measures what each placement
policy does to cluster RAM — the paper's §5.2 samepage-merging effect
promoted to a fleet-level placement question.  Every policy replays the
*identical* workload on its own fresh :class:`Timeline` with the same
seed, so the comparison isolates placement alone; the policy under test
additionally exports a byte-reproducible event journal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import FleetCapacityError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.fleet.fleet import Fleet, FleetStats
from repro.fleet.placement import PLACEMENT_POLICIES
from repro.sim.clock import Timeline
from repro.vmm.vm import MIB
from repro.workloads.fleet import fleet_workload


@dataclass(frozen=True)
class PolicyResult:
    """One policy's end-of-run accounting."""

    policy: str
    stats: FleetStats
    rejected: int
    sim_seconds: float
    journal_events: int

    def export(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "rejected": self.rejected,
            "sim_seconds": round(self.sim_seconds, 3),
            "journal_events": self.journal_events,
            **self.stats.export(),
        }


@dataclass
class FleetReport:
    """The BENCH_fleet.json payload."""

    seed: int
    hosts: int
    nyms: int
    primary_policy: str
    results: List[PolicyResult] = field(default_factory=list)

    def result(self, policy: str) -> PolicyResult:
        for r in self.results:
            if r.policy == policy:
                return r
        raise KeyError(policy)

    @property
    def ksm_aware_beats_first_fit(self) -> bool:
        try:
            return (
                self.result("ksm-aware").stats.ksm_saved_bytes
                > self.result("first-fit").stats.ksm_saved_bytes
            )
        except KeyError:
            return False

    def export(self) -> Dict[str, object]:
        return {
            "bench": "fleet",
            "seed": self.seed,
            "hosts": self.hosts,
            "nyms": self.nyms,
            "primary_policy": self.primary_policy,
            "ksm_aware_beats_first_fit": self.ksm_aware_beats_first_fit,
            "results": [r.export() for r in self.results],
        }

    def summary(self) -> str:
        lines = [
            f"fleet bench: {self.nyms} nyms over {self.hosts} hosts "
            f"(seed {self.seed}, primary policy {self.primary_policy})",
            f"{'policy':<14} {'resident':>8} {'parked':>6} {'evac':>5} "
            f"{'crashes':>7} {'used MiB':>10} {'ksm MiB':>9} {'colonies':>8}",
        ]
        for r in self.results:
            s = r.stats
            lines.append(
                f"{r.policy:<14} {s.nyms_resident:>8} {s.nyms_parked:>6} "
                f"{s.evacuations:>5} {s.host_crashes:>7} "
                f"{s.used_bytes / MIB:>10.0f} {s.ksm_saved_bytes / MIB:>9.0f} "
                f"{s.host_image_pairs:>8}"
            )
        verdict = "yes" if self.ksm_aware_beats_first_fit else "NO"
        lines.append(f"ksm-aware saves more RAM than first-fit: {verdict}")
        return "\n".join(lines)


def _run_policy(
    policy: str,
    seed: int,
    hosts: int,
    nyms: int,
    host_crashes: int,
    journal_path: Optional[str],
    idle_s: float = 0.0,
    flash_clone: bool = True,
) -> PolicyResult:
    """One complete fleet run for one policy, on its own timeline."""
    timeline = Timeline(seed=seed)
    fleet = Fleet(timeline, hosts=hosts, policy=policy, flash_clone=flash_clone)
    arrivals = fleet_workload(timeline.fork_rng("fleet.workload"), nyms)

    # Faults spread across the expected run length (arrivals advance time
    # by interarrival gaps plus each anon boot, ~10 s per nym).
    expected_s = max(60.0, nyms * 10.5)
    plan = FaultPlan.seeded(
        timeline.fork_rng("fleet.faults"),
        duration_s=expected_s,
        relay_churns=0, circuit_teardowns=0, link_flaps=0,
        upload_failures=0, vm_crashes=0,
        host_crashes=host_crashes,
    )
    FaultInjector(timeline, plan).arm(manager=fleet)

    rejected = 0
    for arrival in arrivals:
        timeline.sleep(arrival.interarrival_s)
        try:
            fleet.place(arrival.name, arrival.image_id)
        except FleetCapacityError:
            rejected += 1
            continue
        if arrival.churn_bytes and arrival.name in fleet.nymboxes:
            fleet.touch(arrival.name, arrival.churn_bytes)

    if idle_s:
        timeline.sleep(idle_s)
    fleet.settle_ksm()
    stats = fleet.stats()
    timeline.obs.event(
        "fleet.run_complete", policy=policy,
        resident=stats.nyms_resident, ksm_saved_bytes=stats.ksm_saved_bytes,
    )
    journal_events = timeline.obs.journal.count()
    if journal_path:
        timeline.obs.journal.write_jsonl(journal_path)
    return PolicyResult(
        policy=policy,
        stats=stats,
        rejected=rejected,
        sim_seconds=timeline.now,
        journal_events=journal_events,
    )


def run_fleet(
    seed: int = 0,
    hosts: int = 64,
    nyms: int = 1000,
    policy: str = "ksm-aware",
    host_crashes: int = 2,
    compare: bool = True,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = "BENCH_fleet.json",
    idle_s: float = 0.0,
    flash_clone: bool = True,
) -> FleetReport:
    """Run the fleet scenario; compare all policies on the same workload.

    The ``policy`` under test runs first and owns the exported journal;
    with ``compare`` the remaining registered policies replay the same
    seed for the savings table.
    """
    policies = [policy] + (
        [p for p in sorted(PLACEMENT_POLICIES) if p != policy] if compare else []
    )
    report = FleetReport(seed=seed, hosts=hosts, nyms=nyms, primary_policy=policy)
    for name in policies:
        report.results.append(
            _run_policy(
                name, seed=seed, hosts=hosts, nyms=nyms,
                host_crashes=host_crashes,
                journal_path=journal_path if name == policy else None,
                idle_s=idle_s,
                flash_clone=flash_clone,
            )
        )
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
