"""repro.fleet: deterministic multi-host nymbox scheduling.

The paper's single i7/16 GB testbed, scaled out: a :class:`Fleet` owns
N :class:`Hypervisor` hosts on one :class:`Timeline`, places nymboxes
through pluggable policies (first-fit, least-loaded, KSM-aware), keeps
hosts under memory-pressure watermarks by evacuating nyms through the
§3.5 store-and-relaunch loop, and survives injected host crashes.
``run_fleet`` is the cluster-scale scenario behind ``repro fleet``.

Past one timeline's capacity, :mod:`repro.fleet.shard` partitions the
fleet into regions synchronized at epoch barriers, streams every journal
to a JSONL spool, and checkpoints whole runs for kill/resume;
``run_fleet_sharded`` is the scenario behind ``repro fleet --shards N``.
:mod:`repro.fleet.parallel` runs those shards across spawned OS worker
processes (``--procs N``) with byte-identical journals.
"""

from repro.fleet.fleet import (
    DrainReport,
    Fleet,
    FleetNymbox,
    FleetStats,
    PlacementRejection,
    PlacementRequest,
)
from repro.fleet.host import HostHandle
from repro.fleet.placement import (
    PLACEMENT_POLICIES,
    FirstFit,
    KsmAware,
    LeastLoaded,
    PlacementPolicy,
    make_policy,
)
from repro.fleet.scenario import (
    FleetReport,
    PolicyResult,
    ShardedFleetReport,
    bench_environment,
    resume_fleet_sharded,
    run_fleet,
    run_fleet_sharded,
    scale_trajectory,
)
from repro.fleet.shard import (
    BarrierReport,
    FleetShard,
    LocalShardHandle,
    ShardConfig,
    ShardedFleet,
    ShardedRunResult,
    combined_spool_bytes,
    load_scale_metrics,
    resume_sharded_fleet,
    run_sharded_fleet,
)

__all__ = [
    "BarrierReport",
    "DrainReport",
    "Fleet",
    "FleetNymbox",
    "LocalShardHandle",
    "PlacementRejection",
    "PlacementRequest",
    "FleetShard",
    "FleetStats",
    "FleetReport",
    "HostHandle",
    "PLACEMENT_POLICIES",
    "FirstFit",
    "KsmAware",
    "LeastLoaded",
    "PlacementPolicy",
    "PolicyResult",
    "ShardConfig",
    "ShardedFleet",
    "ShardedFleetReport",
    "ShardedRunResult",
    "bench_environment",
    "combined_spool_bytes",
    "load_scale_metrics",
    "make_policy",
    "resume_fleet_sharded",
    "resume_sharded_fleet",
    "run_fleet",
    "run_fleet_sharded",
    "run_sharded_fleet",
    "scale_trajectory",
]
