"""repro.fleet: deterministic multi-host nymbox scheduling.

The paper's single i7/16 GB testbed, scaled out: a :class:`Fleet` owns
N :class:`Hypervisor` hosts on one :class:`Timeline`, places nymboxes
through pluggable policies (first-fit, least-loaded, KSM-aware), keeps
hosts under memory-pressure watermarks by evacuating nyms through the
§3.5 store-and-relaunch loop, and survives injected host crashes.
``run_fleet`` is the cluster-scale scenario behind ``repro fleet``.
"""

from repro.fleet.fleet import Fleet, FleetNymbox, FleetStats
from repro.fleet.host import HostHandle
from repro.fleet.placement import (
    PLACEMENT_POLICIES,
    FirstFit,
    KsmAware,
    LeastLoaded,
    PlacementPolicy,
    make_policy,
)
from repro.fleet.scenario import FleetReport, PolicyResult, run_fleet

__all__ = [
    "Fleet",
    "FleetNymbox",
    "FleetStats",
    "FleetReport",
    "HostHandle",
    "PLACEMENT_POLICIES",
    "FirstFit",
    "KsmAware",
    "LeastLoaded",
    "PlacementPolicy",
    "PolicyResult",
    "make_policy",
    "run_fleet",
]
