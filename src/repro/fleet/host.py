"""One host in the fleet: a `Hypervisor` plus scheduling bookkeeping."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.vmm.hypervisor import Hypervisor, MemorySnapshot


class HostHandle:
    """The fleet scheduler's view of one physical machine.

    Wraps the host's :class:`Hypervisor` with what placement decisions
    need: who lives here (``residents``), which base images those nyms
    run (``images``), how much RAM is committed, and whether the host has
    crashed.  All byte figures come from the hypervisor's own accounting
    so the scheduler can never disagree with the memory model.

    Accounting reads are cached against the hypervisor's
    ``accounting_token()``: admission checks poll ``used_bytes`` /
    ``free_ram_bytes`` per candidate host per arrival, and between
    arrivals most hosts haven't changed — the cached
    :class:`MemorySnapshot` is served until the token moves.
    """

    def __init__(self, host_id: str, hypervisor: Hypervisor) -> None:
        self.host_id = host_id
        self.hypervisor = hypervisor
        self.residents: Dict[str, "FleetNymbox"] = {}  # noqa: F821 (fleet.py)
        self.crashed = False
        #: Draining hosts stay up (their residents evacuate live) but take
        #: no new placements; cleared by ``Fleet.undrain_host``.
        self.draining = False
        self._snapshot: Optional[MemorySnapshot] = None
        self._snapshot_token: Optional[tuple] = None
        # Per-image resident counts, maintained by add/pop_resident so
        # KsmAware placement never walks the resident dict per score.
        self._image_counts: Dict[str, int] = {}

    # -- capacity ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.hypervisor.memory.total_bytes

    @property
    def free_ram_bytes(self) -> int:
        """RAM headroom for admission (guest allocations, before KSM)."""
        snap = self.memory_snapshot()
        return self.total_bytes - (snap.used_bytes - snap.fs_bytes)

    @property
    def used_bytes(self) -> int:
        """Host RAM in use: guests + writable FS − KSM savings."""
        return self.memory_snapshot().used_bytes

    @property
    def pressure(self) -> float:
        """Fraction of physical RAM in use (the watermark input)."""
        return self.used_bytes / self.total_bytes

    @property
    def ksm_saved_bytes(self) -> int:
        return self.hypervisor.ksm.stats().bytes_saved

    def memory_snapshot(self) -> MemorySnapshot:
        token = self.hypervisor.accounting_token()
        if token != self._snapshot_token:
            self._snapshot = self.hypervisor.memory_snapshot()
            self._snapshot_token = token
        return self._snapshot

    # -- residency -----------------------------------------------------------

    def add_resident(self, box: "FleetNymbox") -> None:  # noqa: F821
        self.residents[box.name] = box
        self._image_counts[box.image_id] = self._image_counts.get(box.image_id, 0) + 1

    def pop_resident(self, name: str) -> Optional["FleetNymbox"]:  # noqa: F821
        box = self.residents.pop(name, None)
        if box is not None:
            remaining = self._image_counts.get(box.image_id, 0) - 1
            if remaining > 0:
                self._image_counts[box.image_id] = remaining
            else:
                self._image_counts.pop(box.image_id, None)
        return box

    def images(self) -> Set[str]:
        """Base images currently resident on this host."""
        return set(self._image_counts)

    def image_count(self, image_id: str) -> int:
        return self._image_counts.get(image_id, 0)

    def image_counts(self) -> Dict[str, int]:
        """Copy of the per-image resident counts (for wave planning)."""
        return dict(self._image_counts)

    def resident_names(self) -> List[str]:
        return sorted(self.residents)

    def admits(self, need_ram_bytes: int) -> bool:
        return (
            not self.crashed
            and not self.draining
            and self.free_ram_bytes >= need_ram_bytes
        )

    @property
    def serving(self) -> bool:
        """Up and accepting placements."""
        return not self.crashed and not self.draining

    def __repr__(self) -> str:
        state = (
            "crashed" if self.crashed
            else "draining" if self.draining
            else f"{len(self.residents)} nyms"
        )
        return f"HostHandle({self.host_id}, {state}, pressure={self.pressure:.2f})"
