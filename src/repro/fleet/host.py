"""One host in the fleet: a `Hypervisor` plus scheduling bookkeeping."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.vmm.hypervisor import Hypervisor, MemorySnapshot


class HostHandle:
    """The fleet scheduler's view of one physical machine.

    Wraps the host's :class:`Hypervisor` with what placement decisions
    need: who lives here (``residents``), which base images those nyms
    run (``images``), how much RAM is committed, and whether the host has
    crashed.  All byte figures come from the hypervisor's own accounting
    so the scheduler can never disagree with the memory model.
    """

    def __init__(self, host_id: str, hypervisor: Hypervisor) -> None:
        self.host_id = host_id
        self.hypervisor = hypervisor
        self.residents: Dict[str, "FleetNymbox"] = {}  # noqa: F821 (fleet.py)
        self.crashed = False

    # -- capacity ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return self.hypervisor.memory.total_bytes

    @property
    def free_ram_bytes(self) -> int:
        """RAM headroom for admission (guest allocations, before KSM)."""
        return self.hypervisor.memory.stats().free_bytes

    @property
    def used_bytes(self) -> int:
        """Host RAM in use: guests + writable FS − KSM savings."""
        return self.hypervisor.memory_snapshot().used_bytes

    @property
    def pressure(self) -> float:
        """Fraction of physical RAM in use (the watermark input)."""
        return self.used_bytes / self.total_bytes

    @property
    def ksm_saved_bytes(self) -> int:
        return self.hypervisor.ksm.stats().bytes_saved

    def memory_snapshot(self) -> MemorySnapshot:
        return self.hypervisor.memory_snapshot()

    # -- residency -----------------------------------------------------------

    def images(self) -> Set[str]:
        """Base images currently resident on this host."""
        return {box.image_id for box in self.residents.values()}

    def image_count(self, image_id: str) -> int:
        return sum(1 for box in self.residents.values() if box.image_id == image_id)

    def resident_names(self) -> List[str]:
        return sorted(self.residents)

    def admits(self, need_ram_bytes: int) -> bool:
        return not self.crashed and self.free_ram_bytes >= need_ram_bytes

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else f"{len(self.residents)} nyms"
        return f"HostHandle({self.host_id}, {state}, pressure={self.pressure:.2f})"
