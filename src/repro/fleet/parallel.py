"""Process-pool execution for the sharded fleet: one shard per OS worker.

The epoch-barrier protocol in :mod:`repro.fleet.shard` is already
process-shaped — shards share nothing and only rendezvous at barriers —
so parallelism is a pure executor swap.  This module supplies that
executor: a :class:`WorkerPool` of **spawned** OS processes, each
hosting one or more resident :class:`~repro.fleet.shard.FleetShard`
objects, and a :class:`WorkerShardHandle` per shard that speaks the
same handle surface as the serial
:class:`~repro.fleet.shard.LocalShardHandle`.

Coordinator and workers talk over one duplex pipe per worker, with a
small tagged message protocol::

    ("build",      shard_id, (config, spool, metrics, arrivals))
    ("resume",     shard_id, pickle_path)         # worker loads from disk
    ("epoch",      shard_id, epoch_end)           # run-epoch directive
    ("crash",      shard_id, None)                # crash-directive
    ("barrier",    shard_id, epoch)               # -> BarrierReport
    ("report",     shard_id, None)                # side-effect-free snapshot
    ("checkpoint", shard_id, None)                # -> pickled shard bytes
    ("flush",      shard_id, None)
    ("close",      shard_id, None)
    ("shutdown",   -1,       None)

Every request gets exactly one reply, ``("ok", shard_id, payload)`` or
``("error", shard_id, traceback)``, and each worker answers requests in
arrival order, so replies on a connection come back in send order (FIFO)
— which is what lets several shards share one worker without reply
routing.  The coordinator exploits the split only where it matters: it
sends *all* run-epoch directives first and then collects the replies, so
shards on different workers advance to the barrier concurrently.

Workers stream their shards' JSONL journal and metrics spools to disk
exactly as the serial path does — same code, same seeds, same flush
points — and ship :class:`~repro.fleet.shard.BarrierReport` values back
at each barrier, so the coordinator's merged accounting, crash planning,
and checkpoint manifests are byte-for-byte identical to a serial run.
Checkpoints reuse the per-shard pickling path: on "checkpoint" the
worker pickles its quiescent shard and ships the bytes; on "resume" it
loads the pickle the coordinator wrote.  A worker that dies mid-run
surfaces as :class:`~repro.errors.ShardWorkerError` naming the shard and
the last completed barrier; the run stays resumable from its last
checkpoint.

Spawn (never fork) keeps workers honest: each child starts from a fresh
interpreter, so the process-global caches (flash-clone page templates,
crypto hot-path caches) start cold in every worker.  That is safe for
byte-identity because cache hits burn exactly the RNG draws a miss would
have — warm or cold never reaches the journal bytes.
"""

from __future__ import annotations

import os
import pickle
import traceback
from multiprocessing import get_context
from typing import Dict, List, Optional, Tuple

from repro.errors import FleetError, ShardWorkerError
from repro.fleet.shard import BarrierReport, FleetShard, ShardConfig

_SHUTDOWN_JOIN_S = 5.0


def _worker_main(conn) -> None:
    """The worker loop: host shards, answer protocol messages in order.

    Runs in the spawned child.  Any exception while serving a request is
    shipped back as an ``("error", ...)`` reply instead of killing the
    worker, so one bad directive doesn't take down sibling shards.
    """
    shards: Dict[int, FleetShard] = {}
    while True:
        try:
            op, shard_id, payload = conn.recv()
        except (EOFError, OSError):
            break  # coordinator went away; spools were flushed at barriers
        try:
            if op == "shutdown":
                for shard in shards.values():
                    shard.flush_spools()
                conn.send(("ok", shard_id, None))
                break
            elif op == "build":
                config, spool_path, metrics_path, arrivals = payload
                shards[shard_id] = FleetShard(
                    config, shard_id, spool_path,
                    arrivals=arrivals, metrics_path=metrics_path,
                )
                conn.send(("ok", shard_id, shards[shard_id].done))
            elif op == "resume":
                with open(payload, "rb") as handle:
                    shards[shard_id] = pickle.load(handle)
                conn.send(("ok", shard_id, shards[shard_id].done))
            elif op == "epoch":
                placed = shards[shard_id].run_epoch(payload)
                conn.send(("ok", shard_id, (placed, shards[shard_id].done)))
            elif op == "crash":
                conn.send(("ok", shard_id, shards[shard_id].fleet.crash_host()))
            elif op == "barrier":
                conn.send(("ok", shard_id, shards[shard_id].barrier(payload)))
            elif op == "report":
                conn.send(("ok", shard_id, shards[shard_id].report()))
            elif op == "checkpoint":
                shard = shards[shard_id]
                if not shard.timeline.quiescent:
                    raise FleetError(
                        f"shard {shard_id} has pending events at the barrier"
                    )
                conn.send(("ok", shard_id, pickle.dumps(shard)))
            elif op == "flush":
                shards[shard_id].flush_spools()
                conn.send(("ok", shard_id, None))
            elif op == "close":
                shards[shard_id].close_spools()
                conn.send(("ok", shard_id, None))
            else:
                raise FleetError(f"unknown worker op {op!r}")
        except Exception:  # noqa: BLE001 - shipped to the coordinator
            try:
                conn.send(("error", shard_id, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break


class WorkerShardHandle:
    """The parallel twin of :class:`~repro.fleet.shard.LocalShardHandle`.

    Same surface, but every call crosses the owning worker's pipe.  The
    split :meth:`start_epoch`/:meth:`finish_epoch` pair is the one place
    latency is overlapped: start sends the run-epoch directive and
    returns immediately; finish blocks on the reply.
    """

    def __init__(self, pool: "WorkerPool", shard_id: int, worker_index: int) -> None:
        self._pool = pool
        self.shard_id = shard_id
        self.worker_index = worker_index
        self.done = False
        self._epoch_pending = False

    @property
    def pid(self) -> Optional[int]:
        return self._pool.worker_pid(self.worker_index)

    def start_epoch(self, epoch_end: float) -> None:
        self._pool.send(self, ("epoch", self.shard_id, epoch_end))
        self._epoch_pending = True

    def finish_epoch(self) -> int:
        if not self._epoch_pending:
            raise FleetError(
                f"shard {self.shard_id}: finish_epoch without start_epoch"
            )
        self._epoch_pending = False
        placed, done = self._pool.recv(self)
        self.done = done
        return placed

    def crash_host(self) -> Optional[str]:
        return self._pool.request(self, ("crash", self.shard_id, None))

    def barrier(self, epoch: int) -> BarrierReport:
        report = self._pool.request(self, ("barrier", self.shard_id, epoch))
        self.done = report.done
        return report

    def report(self) -> BarrierReport:
        return self._pool.request(self, ("report", self.shard_id, None))

    def checkpoint_bytes(self) -> bytes:
        return self._pool.request(self, ("checkpoint", self.shard_id, None))

    def flush(self) -> None:
        self._pool.request(self, ("flush", self.shard_id, None))

    def close(self) -> None:
        self._pool.request(self, ("close", self.shard_id, None))

    def shutdown(self) -> None:  # the pool tears workers down once, itself
        pass


class WorkerPool:
    """Spawned workers hosting shards round-robin, one pipe per worker.

    ``procs`` workers serve ``len(spool_paths)`` shards; shard *i* lives
    on worker ``i % procs``.  Construction is synchronous: every shard
    is built (or resumed from its checkpoint pickle) before the pool
    returns, so a seed/config error surfaces here, not mid-epoch.
    """

    def __init__(
        self,
        config: ShardConfig,
        procs: int,
        spool_paths: List[str],
        metrics_paths: List[str],
        per_shard_arrivals=None,
        resume_pickles: Optional[List[str]] = None,
    ) -> None:
        self.config = config
        self.procs = max(1, min(int(procs), len(spool_paths)))
        #: the last epoch barrier every shard completed — what a
        #: :class:`ShardWorkerError` reports as the resume point.  The
        #: coordinator stamps it after construction and after every
        #: barrier.
        self.last_barrier = 0
        ctx = get_context("spawn")
        self._conns = []
        self._procs = []
        for _ in range(self.procs):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self.handles = [
            WorkerShardHandle(self, shard_id, shard_id % self.procs)
            for shard_id in range(len(spool_paths))
        ]
        # Seed every worker — builds and resumes ship in shard-id order
        # and ack in the same order (FIFO per connection).
        for handle in self.handles:
            sid = handle.shard_id
            if resume_pickles is not None:
                self.send(handle, ("resume", sid, resume_pickles[sid]))
            else:
                arrivals = (
                    per_shard_arrivals[sid]
                    if per_shard_arrivals is not None
                    else None
                )
                self.send(
                    handle,
                    (
                        "build", sid,
                        (config, spool_paths[sid], metrics_paths[sid], arrivals),
                    ),
                )
        for handle in self.handles:
            handle.done = self.recv(handle)

    def worker_pid(self, worker_index: int) -> Optional[int]:
        return self._procs[worker_index].pid

    # -- the wire -------------------------------------------------------------

    def send(self, handle: WorkerShardHandle, message: Tuple) -> None:
        try:
            self._conns[handle.worker_index].send(message)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise self._worker_died(handle, exc) from exc

    def recv(self, handle: WorkerShardHandle):
        try:
            status, shard_id, payload = self._conns[handle.worker_index].recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise self._worker_died(handle, exc) from exc
        if shard_id != handle.shard_id:
            raise FleetError(
                f"protocol desync: expected reply for shard "
                f"{handle.shard_id}, got shard {shard_id}"
            )
        if status == "error":
            raise ShardWorkerError(
                f"shard {handle.shard_id} worker failed after barrier "
                f"{self.last_barrier}:\n{payload}",
                shard_id=handle.shard_id,
                last_barrier=self.last_barrier,
            )
        return payload

    def request(self, handle: WorkerShardHandle, message: Tuple):
        self.send(handle, message)
        return self.recv(handle)

    def _worker_died(
        self, handle: WorkerShardHandle, exc: Exception
    ) -> ShardWorkerError:
        proc = self._procs[handle.worker_index]
        proc.join(timeout=0.5)
        return ShardWorkerError(
            f"worker {handle.worker_index} (pid {proc.pid}, exitcode "
            f"{proc.exitcode}) hosting shard {handle.shard_id} died after "
            f"barrier {self.last_barrier}; resume from the checkpoint taken "
            f"there ({exc!r})",
            shard_id=handle.shard_id,
            last_barrier=self.last_barrier,
        )

    # -- teardown -------------------------------------------------------------

    def shutdown(self) -> None:
        """Orderly teardown: flush-and-exit every worker, then reap."""
        for conn in self._conns:
            try:
                conn.send(("shutdown", -1, None))
            except (BrokenPipeError, ConnectionResetError, OSError):
                continue
        for conn in self._conns:
            try:
                conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                continue
        self._reap()

    def terminate(self) -> None:
        """Hard teardown after a failure: no protocol, just kill and reap."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self._reap()

    def _reap(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=_SHUTDOWN_JOIN_S)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=_SHUTDOWN_JOIN_S)
        self._conns = []
        self._procs = []

    def __repr__(self) -> str:
        return (
            f"WorkerPool(procs={self.procs}, shards={len(self.handles)}, "
            f"last_barrier={self.last_barrier})"
        )


def default_procs() -> int:
    """The ``--procs auto`` answer: one worker per core, at least one."""
    return max(1, os.cpu_count() or 1)
