"""Sharded fleet scale-out: regions, epoch barriers, checkpoint/resume.

One :class:`~repro.fleet.fleet.Fleet` on one in-memory
:class:`~repro.sim.clock.Timeline` tops out around the 64-host/1000-nym
scenario.  The paper's unlinkability story is about *populations* of
nyms, so the scale path partitions the fleet into **shards**: each shard
owns its own timeline, its own hosts, its own seeded RNG streams, and
its own journal — streamed to a JSONL spool on disk through a bounded
window — and a small coordinator advances all shards through coarse
**epoch barriers**.

Determinism is preserved by construction:

* the global arrival stream is drawn once from the run seed and
  partitioned round-robin, each arrival keeping its absolute arrival
  time, so shard membership and timing are pure functions of the seed;
* shards run strictly in shard-id order within every epoch, and the
  coordinator records per-shard and merged accounting in that same
  fixed order at each barrier — two same-seed runs produce
  byte-identical spools, shard by shard;
* host-crash faults are scheduled from a forked RNG onto (shard, epoch)
  slots and fired inline at barriers, never through timeline callbacks,
  which keeps every shard quiescent (empty event queue) at each barrier.

That quiescence is what makes **checkpoint/resume** well-defined: at a
barrier every shard is a closed object graph (timeline + fleet + cursor)
with no pending callbacks, so it pickles whole.  A checkpoint directory
holds one pickle per shard, the coordinator journal, and a manifest with
every spool's byte offset.  Resume truncates each spool to its recorded
offset (cutting anything a killed run wrote past the checkpoint) and
continues the epoch loop; the concatenated journal bytes of a resumed
run are identical to an uninterrupted same-seed run — pinned by
tests/test_fleet_shard.py and the scale-smoke CI job.

The coordinator drives shards through **handles**, and the handle is
where execution modes split:

* ``procs=1`` (the default) holds every :class:`FleetShard` in-process
  behind a :class:`LocalShardHandle` — the serial path;
* ``procs=N`` puts shards in spawned OS worker processes behind
  :mod:`repro.fleet.parallel` proxies that speak a run-epoch /
  crash-directive / barrier-stats / checkpoint / shutdown pipe protocol.

Because shards share nothing (the Nymix isolation argument, promoted to
regions) and only rendezvous at barriers, the two modes produce
**byte-identical** combined journals for the same seed — the hard gate
pinned by tests/test_fleet_parallel.py and the scale-smoke CI job.

Alongside its journal, every shard streams a per-epoch **metrics**
snapshot (``shard.metrics`` events: residency, RAM, KSM savings,
placement counters at each barrier) to a sibling ``*.metrics.jsonl``
spool; the coordinator merges them into its own ``metrics.jsonl``.
``repro stats --scale DIR`` reads the spools back.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FleetCapacityError, FleetError, ShardWorkerError
from repro.fleet.fleet import Fleet, FleetStats
from repro.obs.journal import EventJournal
from repro.sim.clock import Clock, Timeline
from repro.sim.rng import SeededRng
from repro.tenancy.policy import FleetPolicies
from repro.workloads.fleet import NymArrival, fleet_workload

_MANIFEST = "manifest.json"
_COORDINATOR_PKL = "coordinator.pkl"


def combined_spool_bytes(spool_paths: List[str]) -> bytes:
    """Concatenate spool files with a one-line JSON header per section.

    The canonical order (coordinator first, then shards by id) comes
    from the caller; the result is the byte-comparable whole-run record
    used by tests and the scale-smoke CI gate.
    """
    chunks: List[bytes] = []
    for path in spool_paths:
        name = os.path.basename(path)
        if name.endswith(".jsonl"):
            name = name[: -len(".jsonl")]
        chunks.append(
            json.dumps({"journal": name}, sort_keys=True,
                       separators=(",", ":")).encode() + b"\n"
        )
        with open(path, "rb") as handle:
            chunks.append(handle.read())
    return b"".join(chunks)


@dataclass(frozen=True)
class ShardConfig:
    """Everything that determines a sharded run, bit for bit.

    Execution details that must *never* change the bytes — how many OS
    processes run the shards, how often to checkpoint — deliberately
    live outside this object.
    """

    seed: int = 0
    shards: int = 4
    hosts_per_shard: int = 16
    nyms: int = 2000
    policy: str = "ksm-aware"
    epoch_s: float = 120.0
    host_crashes: int = 0
    flash_clone: bool = True
    mean_interarrival_s: float = 0.5
    journal_window: int = 4096

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise FleetError(f"a sharded fleet needs >= 1 shard, got {self.shards}")
        if self.epoch_s <= 0:
            raise FleetError(f"epoch_s must be positive, got {self.epoch_s}")

    def shard_seed(self, shard_id: int) -> int:
        """The per-shard timeline seed: a pure function of (seed, shard)."""
        return SeededRng(self.seed).fork(f"fleet.shard.{shard_id}").seed

    def export(self) -> Dict[str, object]:
        return asdict(self)


def partition_arrivals(
    config: ShardConfig,
) -> List[List[Tuple[float, NymArrival]]]:
    """Draw the global arrival stream and split it round-robin by shard.

    Every arrival keeps its **absolute** arrival time (cumulative
    interarrival gaps over the global stream), so the per-shard streams
    stay aligned on one global clock and epoch membership is identical
    no matter how many shards share the load.
    """
    rng = SeededRng(config.seed).fork("fleet.workload")
    arrivals = fleet_workload(
        rng, config.nyms, mean_interarrival_s=config.mean_interarrival_s
    )
    per_shard: List[List[Tuple[float, NymArrival]]] = [
        [] for _ in range(config.shards)
    ]
    now = 0.0
    for index, arrival in enumerate(arrivals):
        now += arrival.interarrival_s
        per_shard[index % config.shards].append((now, arrival))
    return per_shard


@dataclass(frozen=True)
class BarrierReport:
    """One shard's rendezvous payload: everything the coordinator needs.

    This is the whole coordinator-facing surface of a shard at a
    barrier — and it is a plain picklable value, which is what lets the
    shard itself live in another OS process.  The coordinator's merged
    accounting is a pure function of these reports in shard-id order,
    so serial and parallel runs cannot diverge.
    """

    shard_id: int
    arrivals: int
    cursor: int
    rejected: int
    done: bool
    sim_now: float
    journal_events: int
    spool_offset: int
    metrics_events: int
    metrics_offset: int
    stats: FleetStats

    @property
    def placed(self) -> int:
        return self.cursor - self.rejected


class FleetShard:
    """One region: its own timeline, fleet, arrival slice, and spools."""

    def __init__(
        self,
        config: ShardConfig,
        shard_id: int,
        spool_path: str,
        arrivals: Optional[List[Tuple[float, NymArrival]]] = None,
        metrics_path: Optional[str] = None,
    ) -> None:
        self.shard_id = shard_id
        self.rejected = 0
        self.cursor = 0
        if arrivals is None:
            arrivals = partition_arrivals(config)[shard_id]
        self.arrivals = arrivals
        self.timeline = Timeline(seed=config.shard_seed(shard_id))
        self.timeline.obs.journal.stream_to(spool_path, window=config.journal_window)
        # The per-epoch metrics spool: one snapshot event per barrier,
        # streamed beside the journal with the same window/checkpoint
        # machinery.  Without a path it stays a small in-memory journal
        # (standalone-shard tests).
        self.metrics = EventJournal(self.timeline.clock)
        if metrics_path:
            self.metrics.stream_to(metrics_path, window=config.journal_window)
        self.fleet = Fleet(
            self.timeline,
            hosts=config.hosts_per_shard,
            policies=FleetPolicies(placement=config.policy),
            flash_clone=config.flash_clone,
        )
        self.timeline.obs.event(
            "shard.created", shard=shard_id, hosts=config.hosts_per_shard,
            arrivals=len(self.arrivals),
        )

    @property
    def journal(self) -> EventJournal:
        return self.timeline.obs.journal

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.arrivals)

    def run_epoch(self, epoch_end: float) -> int:
        """Process every arrival due by ``epoch_end``; returns how many.

        The shard clock advances through each arrival's absolute time
        (boots may push it further — later arrivals then place
        immediately, exactly like the single-timeline scenario), ends at
        or past ``epoch_end``, and settles KSM so barrier accounting is
        converged.  The event queue is empty on return.
        """
        placed = 0
        timeline, fleet = self.timeline, self.fleet
        while self.cursor < len(self.arrivals):
            t_abs, arrival = self.arrivals[self.cursor]
            if t_abs > epoch_end:
                break
            if t_abs > timeline.now:
                timeline.sleep(t_abs - timeline.now)
            try:
                fleet.place(arrival.name, arrival.image_id)
            except FleetCapacityError:
                self.rejected += 1
            else:
                placed += 1
                if arrival.churn_bytes and arrival.name in fleet.nymboxes:
                    fleet.touch(arrival.name, arrival.churn_bytes)
            self.cursor += 1
        if epoch_end > timeline.now:
            timeline.sleep(epoch_end - timeline.now)
        fleet.settle_ksm()
        return placed

    def barrier_stats(self) -> FleetStats:
        return self.fleet.stats()

    def report(self) -> BarrierReport:
        """A side-effect-free rendezvous snapshot (no flush, no events)."""
        return BarrierReport(
            shard_id=self.shard_id,
            arrivals=len(self.arrivals),
            cursor=self.cursor,
            rejected=self.rejected,
            done=self.done,
            sim_now=self.timeline.now,
            journal_events=len(self.journal),
            spool_offset=self.journal.spool_offset,
            metrics_events=len(self.metrics),
            metrics_offset=self.metrics.spool_offset,
            stats=self.barrier_stats(),
        )

    def barrier(self, epoch: int) -> BarrierReport:
        """The rendezvous: snapshot metrics, flush both spools, report.

        Called once per epoch in shard-id order (by the coordinator in
        serial mode, by the owning worker on a barrier-stats message in
        parallel mode); either way the spool bytes come out identical.
        """
        stats = self.barrier_stats()
        self.metrics.record(
            "shard.metrics", epoch=epoch, shard=self.shard_id,
            cursor=self.cursor, placed=self.cursor - self.rejected,
            rejected=self.rejected, done=self.done,
            journal_events=len(self.journal),
            **stats.export(),
        )
        self.journal.flush()
        self.metrics.flush()
        return BarrierReport(
            shard_id=self.shard_id,
            arrivals=len(self.arrivals),
            cursor=self.cursor,
            rejected=self.rejected,
            done=self.done,
            sim_now=self.timeline.now,
            journal_events=len(self.journal),
            spool_offset=self.journal.spool_offset,
            metrics_events=len(self.metrics),
            metrics_offset=self.metrics.spool_offset,
            stats=stats,
        )

    def flush_spools(self) -> None:
        self.journal.flush()
        self.metrics.flush()

    def close_spools(self) -> None:
        self.journal.close_spool()
        self.metrics.close_spool()


class LocalShardHandle:
    """The in-process shard handle: the serial (``procs=1``) execution.

    The coordinator only ever talks to handles; this one forwards every
    call straight into a resident :class:`FleetShard`.  Its parallel
    twin (:class:`repro.fleet.parallel.WorkerShardHandle`) speaks the
    same surface over a pipe to a spawned worker.
    """

    pid: Optional[int] = None  # no worker process behind this handle

    def __init__(self, shard: FleetShard) -> None:
        self.shard = shard
        self.shard_id = shard.shard_id
        self.done = shard.done
        self._pending_epoch_end: Optional[float] = None

    def start_epoch(self, epoch_end: float) -> None:
        self._pending_epoch_end = epoch_end

    def finish_epoch(self) -> int:
        if self._pending_epoch_end is None:
            raise FleetError(
                f"shard {self.shard_id}: finish_epoch without start_epoch"
            )
        epoch_end, self._pending_epoch_end = self._pending_epoch_end, None
        placed = self.shard.run_epoch(epoch_end)
        self.done = self.shard.done
        return placed

    def crash_host(self) -> Optional[str]:
        return self.shard.fleet.crash_host()

    def barrier(self, epoch: int) -> BarrierReport:
        report = self.shard.barrier(epoch)
        self.done = report.done
        return report

    def report(self) -> BarrierReport:
        return self.shard.report()

    def checkpoint_bytes(self) -> bytes:
        if not self.shard.timeline.quiescent:
            raise FleetError(
                f"shard {self.shard_id} has pending events at the barrier"
            )
        return pickle.dumps(self.shard)

    def flush(self) -> None:
        self.shard.flush_spools()

    def close(self) -> None:
        self.shard.close_spools()

    def shutdown(self) -> None:  # nothing to tear down in-process
        pass


@dataclass
class ShardedRunResult:
    """What one :meth:`ShardedFleet.run` call accomplished."""

    config: ShardConfig
    epochs: int
    completed: bool
    rejected: int
    merged: Dict[str, object]
    shard_stats: List[Dict[str, object]] = field(default_factory=list)
    journal_events: int = 0
    spool_paths: List[str] = field(default_factory=list)

    def export(self) -> Dict[str, object]:
        return {
            "config": self.config.export(),
            "epochs": self.epochs,
            "completed": self.completed,
            "rejected": self.rejected,
            "merged": self.merged,
            "shards": self.shard_stats,
            "journal_events": self.journal_events,
        }


class ShardedFleet:
    """The coordinator: shards in lock-step over coarse epoch barriers.

    ``procs`` picks the executor: 1 keeps every shard in-process
    (serial); N > 1 spreads shards round-robin over ``min(N, shards)``
    spawned OS workers.  The choice never reaches the bytes — the
    coordinator's accounting is a pure function of the
    :class:`BarrierReport` stream, which is identical in both modes.
    """

    def __init__(
        self,
        config: ShardConfig,
        spool_dir: str,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        procs: int = 1,
    ) -> None:
        self.config = config
        self.spool_dir = str(spool_dir)
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = max(1, checkpoint_every)
        os.makedirs(self.spool_dir, exist_ok=True)
        if self.checkpoint_dir:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.epoch = 0
        self.procs = max(1, min(int(procs), config.shards))
        self._pool = None
        self._crash_plan = self._plan_crashes()
        self._crashes_fired = 0
        # The coordinator's own journal: merged accounting per barrier,
        # streamed like every shard's.  The metrics journal carries the
        # merged per-epoch snapshot the shards' metrics spools roll into.
        self._coord_clock = Clock()
        self._coord_journal = EventJournal(self._coord_clock)
        self._coord_journal.stream_to(
            self._spool_path("coordinator"), window=config.journal_window
        )
        self._coord_metrics = EventJournal(self._coord_clock)
        self._coord_metrics.stream_to(
            self.metrics_path("metrics"), window=config.journal_window
        )
        per_shard = partition_arrivals(config)
        self.handles = self._build_handles(per_shard)
        self._coord_journal.record(
            "coord.created", shards=config.shards, nyms=config.nyms,
            hosts=config.shards * config.hosts_per_shard, policy=config.policy,
        )

    def _build_handles(self, per_shard) -> List[object]:
        if self.procs == 1:
            return [
                LocalShardHandle(
                    FleetShard(
                        self.config, shard_id,
                        self._spool_path(f"shard-{shard_id:02d}"),
                        arrivals=per_shard[shard_id],
                        metrics_path=self.metrics_path(f"shard-{shard_id:02d}"),
                    )
                )
                for shard_id in range(self.config.shards)
            ]
        from repro.fleet.parallel import WorkerPool

        self._pool = WorkerPool(
            self.config,
            procs=self.procs,
            spool_paths=[
                self._spool_path(f"shard-{i:02d}")
                for i in range(self.config.shards)
            ],
            metrics_paths=[
                self.metrics_path(f"shard-{i:02d}")
                for i in range(self.config.shards)
            ],
            per_shard_arrivals=per_shard,
        )
        self._pool.last_barrier = self.epoch
        return list(self._pool.handles)

    @property
    def shards(self) -> List[FleetShard]:
        """The resident shard objects — serial mode only.

        In parallel mode the shards live in worker processes; everything
        the coordinator needs crosses as :class:`BarrierReport` values.
        """
        if self.procs != 1:
            raise FleetError(
                "shards live in worker processes under procs>1; "
                "use the handles/BarrierReport surface"
            )
        return [handle.shard for handle in self.handles]

    # -- paths ---------------------------------------------------------------

    def _spool_path(self, name: str) -> str:
        return os.path.join(self.spool_dir, f"{name}.jsonl")

    def metrics_path(self, name: str) -> str:
        return os.path.join(self.spool_dir, f"{name}.metrics.jsonl")

    def spool_paths(self) -> List[str]:
        """Coordinator first, then shards in id order — the canonical
        concatenation order for combined journal bytes."""
        return [self._spool_path("coordinator")] + [
            self._spool_path(f"shard-{h.shard_id:02d}") for h in self.handles
        ]

    def metrics_paths(self) -> List[str]:
        """Merged coordinator metrics first, then shards in id order."""
        return [self.metrics_path("metrics")] + [
            self.metrics_path(f"shard-{h.shard_id:02d}") for h in self.handles
        ]

    # -- fault schedule ------------------------------------------------------

    def _plan_crashes(self) -> Dict[int, List[int]]:
        """(epoch -> shard ids to crash), drawn once from a forked RNG."""
        if not self.config.host_crashes:
            return {}
        rng = SeededRng(self.config.seed).fork("fleet.shard.crashes")
        expected_end = self.config.nyms * self.config.mean_interarrival_s
        max_epoch = max(1, int(expected_end / self.config.epoch_s))
        plan: Dict[int, List[int]] = {}
        for index in range(self.config.host_crashes):
            epoch = rng.randint(1, max_epoch)
            shard = index % self.config.shards
            plan.setdefault(epoch, []).append(shard)
        return plan

    def _fire_crashes(self, epoch: int, final: bool) -> None:
        due: List[int] = []
        if final:
            for pending_epoch in sorted(self._crash_plan):
                if pending_epoch >= epoch:
                    due.extend(self._crash_plan.pop(pending_epoch))
        if epoch in self._crash_plan:
            due.extend(self._crash_plan.pop(epoch))
        for shard_id in due:
            crashed = self.handles[shard_id].crash_host()
            self._crashes_fired += 1
            self._coord_journal.record(
                "coord.host_crash", shard=shard_id,
                host=crashed if crashed else "",
            )

    # -- the epoch loop ------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(handle.done for handle in self.handles) and not self._crash_plan

    def run(self, stop_after_epoch: Optional[int] = None) -> ShardedRunResult:
        """Advance epochs until every shard drained (or an early stop).

        ``stop_after_epoch`` halts after that many *additional* barriers
        — the kill half of the kill/resume story; the run stays
        resumable from its last checkpoint.

        A worker process dying mid-epoch surfaces as
        :class:`~repro.errors.ShardWorkerError` naming the shard and the
        last completed barrier; the surviving workers are torn down, the
        coordinator spools are flushed, and the run stays resumable from
        its last checkpoint.
        """
        try:
            return self._run_epochs(stop_after_epoch)
        except ShardWorkerError:
            self._abort_workers()
            raise

    def _run_epochs(self, stop_after_epoch: Optional[int]) -> ShardedRunResult:
        barriers = 0
        while not self.done:
            self.epoch += 1
            barriers += 1
            epoch_end = self.epoch * self.config.epoch_s
            # All shards advance to the barrier — concurrently when the
            # handles front worker processes, in shard-id order when
            # they are local.  Replies are collected in shard-id order
            # either way.
            for handle in self.handles:
                handle.start_epoch(epoch_end)
            for handle in self.handles:
                handle.finish_epoch()
            final = all(handle.done for handle in self.handles)
            self._fire_crashes(self.epoch, final=final)
            reports = self._barrier(epoch_end)
            if self.checkpoint_dir and self.epoch % self.checkpoint_every == 0:
                self.checkpoint(reports)
            if stop_after_epoch is not None and barriers >= stop_after_epoch:
                return self._result(completed=self.done)
        return self._result(completed=True)

    def _barrier(self, epoch_end: float) -> List[BarrierReport]:
        """Rendezvous: collect per-shard reports, merge, record, flush."""
        reports = [handle.barrier(self.epoch) for handle in self.handles]
        self._coord_clock.advance_to(epoch_end)
        merged = self._merged_from(reports, record_per_shard=True)
        self._coord_journal.record("coord.epoch_merged", epoch=self.epoch, **merged)
        self._coord_metrics.record(
            "coord.metrics", epoch=self.epoch, shards=len(reports), **merged
        )
        self._coord_journal.flush()
        self._coord_metrics.flush()
        if self._pool is not None:
            self._pool.last_barrier = self.epoch
        return reports

    def _merged_from(
        self, reports: List[BarrierReport], record_per_shard: bool = False
    ) -> Dict[str, object]:
        totals = {
            "hosts_up": 0, "nyms_resident": 0, "nyms_parked": 0,
            "placements": 0, "evacuations": 0, "host_crashes": 0,
            "used_bytes": 0, "total_bytes": 0, "ksm_saved_bytes": 0,
            "rejected": 0,
        }
        for report in reports:
            stats = report.stats
            if record_per_shard:
                self._coord_journal.record(
                    "coord.shard_epoch", epoch=self.epoch, shard=report.shard_id,
                    placed=report.placed,
                    rejected=report.rejected,
                    resident=stats.nyms_resident,
                    used_bytes=stats.used_bytes,
                    ksm_saved_bytes=stats.ksm_saved_bytes,
                    events=report.journal_events,
                )
            totals["hosts_up"] += stats.hosts_up
            totals["nyms_resident"] += stats.nyms_resident
            totals["nyms_parked"] += stats.nyms_parked
            totals["placements"] += stats.placements
            totals["evacuations"] += stats.evacuations
            totals["host_crashes"] += stats.host_crashes
            totals["used_bytes"] += stats.used_bytes
            totals["total_bytes"] += stats.total_bytes
            totals["ksm_saved_bytes"] += stats.ksm_saved_bytes
            totals["rejected"] += report.rejected
        return totals

    def _result(self, completed: bool) -> ShardedRunResult:
        reports = [handle.report() for handle in self.handles]
        merged = self._merged_from(reports)
        shard_stats = []
        for report in reports:
            shard_stats.append(
                {
                    "shard": report.shard_id,
                    "arrivals": report.arrivals,
                    "placed": report.placed,
                    "rejected": report.rejected,
                    "sim_seconds": round(report.sim_now, 3),
                    "journal_events": report.journal_events,
                    **report.stats.export(),
                }
            )
        return ShardedRunResult(
            config=self.config,
            epochs=self.epoch,
            completed=completed,
            rejected=merged["rejected"],
            merged=merged,
            shard_stats=shard_stats,
            journal_events=len(self._coord_journal)
            + sum(r.journal_events for r in reports),
            spool_paths=self.spool_paths(),
        )

    def journal_events(self) -> int:
        return len(self._coord_journal) + sum(
            handle.report().journal_events for handle in self.handles
        )

    def flush(self) -> None:
        """Flush every spool without sealing (the killed-mid-run path)."""
        for handle in self.handles:
            handle.flush()
        self._coord_journal.flush()
        self._coord_metrics.flush()

    def close(self) -> None:
        """Record the terminal merged event and seal every spool."""
        reports = [handle.report() for handle in self.handles]
        merged = self._merged_from(reports)
        self._coord_journal.record(
            "coord.run_complete", epochs=self.epoch,
            nyms_resident=merged["nyms_resident"],
            ksm_saved_bytes=merged["ksm_saved_bytes"],
            rejected=merged["rejected"],
        )
        for handle in self.handles:
            handle.close()
        self._coord_journal.close_spool()
        self._coord_metrics.close_spool()
        self.shutdown()

    def shutdown(self) -> None:
        """Tear down worker processes, if any (idempotent)."""
        for handle in self.handles:
            handle.shutdown()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _abort_workers(self) -> None:
        """A worker died: flush what the coordinator owns, kill the rest."""
        try:
            self._coord_journal.flush()
            self._coord_metrics.flush()
        finally:
            if self._pool is not None:
                self._pool.terminate()
                self._pool = None

    # -- combined journal ----------------------------------------------------

    def combined_journal_bytes(self) -> bytes:
        """Coordinator spool + shard spools in shard-id order, with one
        header line per section — the byte-comparable whole-run record."""
        return combined_spool_bytes(self.spool_paths())

    def combined_metrics_bytes(self) -> bytes:
        """The metrics spools, same canonical order and header scheme."""
        return combined_spool_bytes(self.metrics_paths())

    def write_combined(self, path: str) -> int:
        data = self.combined_journal_bytes()
        with open(path, "wb") as handle:
            handle.write(data)
        return len(data)

    # -- checkpoint/resume ---------------------------------------------------

    def checkpoint(
        self, reports: Optional[List[BarrierReport]] = None
    ) -> str:
        """Persist the whole run at the current barrier, atomically.

        Journals were just flushed, so each shard is a quiescent object
        graph; the manifest lands last (tmp + rename) so a directory
        with a manifest is always internally consistent.  The shard
        pickles come through the handles, so a worker-resident shard is
        serialized in its own process and shipped back whole.
        """
        if not self.checkpoint_dir:
            raise FleetError("this ShardedFleet has no checkpoint_dir")
        for handle in self.handles:
            self._write_atomic(
                os.path.join(
                    self.checkpoint_dir, f"shard-{handle.shard_id:02d}.pkl"
                ),
                handle.checkpoint_bytes(),
            )
        if reports is None:
            for handle in self.handles:
                handle.flush()
            reports = [handle.report() for handle in self.handles]
        self._write_atomic(
            os.path.join(self.checkpoint_dir, _COORDINATOR_PKL),
            pickle.dumps(
                (self._coord_clock, self._coord_journal, self._coord_metrics)
            ),
        )
        manifest = {
            "config": self.config.export(),
            "epoch": self.epoch,
            "crashes_fired": self._crashes_fired,
            "crash_plan": {str(k): v for k, v in self._crash_plan.items()},
            "spool_dir": self.spool_dir,
            "coordinator": {
                "spool": self._spool_path("coordinator"),
                "offset": self._coord_journal.spool_offset,
                "events": len(self._coord_journal),
                "metrics_spool": self.metrics_path("metrics"),
                "metrics_offset": self._coord_metrics.spool_offset,
                "metrics_events": len(self._coord_metrics),
            },
            "shards": [
                {
                    "id": report.shard_id,
                    "spool": self._spool_path(f"shard-{report.shard_id:02d}"),
                    "offset": report.spool_offset,
                    "events": report.journal_events,
                    "metrics_spool": self.metrics_path(
                        f"shard-{report.shard_id:02d}"
                    ),
                    "metrics_offset": report.metrics_offset,
                    "metrics_events": report.metrics_events,
                    "cursor": report.cursor,
                    "rejected": report.rejected,
                }
                for report in reports
            ],
        }
        self._write_atomic(
            os.path.join(self.checkpoint_dir, _MANIFEST),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return self.checkpoint_dir

    @staticmethod
    def _write_atomic(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    @classmethod
    def resume(
        cls,
        checkpoint_dir: str,
        checkpoint_every: int = 1,
        procs: int = 1,
    ) -> "ShardedFleet":
        """Rebuild a run from its checkpoint directory.

        Every spool is truncated to the offset the manifest recorded —
        a killed run may have flushed window batches past the last
        barrier, and those bytes must not survive into the resumed
        journal.  ``procs`` picks the executor for the *resumed* half
        independently of how the checkpointing run executed: a
        checkpoint taken under ``procs=1`` resumes fine under
        ``procs=4`` and vice versa, byte for byte.
        """
        manifest_path = os.path.join(checkpoint_dir, _MANIFEST)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        sharded = cls.__new__(cls)
        sharded.config = ShardConfig(**manifest["config"])
        sharded.spool_dir = manifest["spool_dir"]
        sharded.checkpoint_dir = str(checkpoint_dir)
        sharded.checkpoint_every = max(1, checkpoint_every)
        sharded.epoch = manifest["epoch"]
        sharded.procs = max(1, min(int(procs), sharded.config.shards))
        sharded._pool = None
        sharded._crashes_fired = manifest["crashes_fired"]
        sharded._crash_plan = {
            int(k): v for k, v in manifest["crash_plan"].items()
        }
        with open(os.path.join(checkpoint_dir, _COORDINATOR_PKL), "rb") as handle:
            (
                sharded._coord_clock,
                sharded._coord_journal,
                sharded._coord_metrics,
            ) = pickle.load(handle)
        coord = manifest["coordinator"]
        cls._truncate_spool(coord["spool"], coord["offset"])
        cls._truncate_spool(coord["metrics_spool"], coord["metrics_offset"])
        pickle_paths = []
        for entry in manifest["shards"]:
            cls._truncate_spool(entry["spool"], entry["offset"])
            cls._truncate_spool(entry["metrics_spool"], entry["metrics_offset"])
            pickle_paths.append(
                os.path.join(checkpoint_dir, f"shard-{entry['id']:02d}.pkl")
            )
        if sharded.procs == 1:
            handles: List[object] = []
            for path in pickle_paths:
                with open(path, "rb") as handle:
                    handles.append(LocalShardHandle(pickle.load(handle)))
            sharded.handles = handles
        else:
            from repro.fleet.parallel import WorkerPool

            sharded._pool = WorkerPool(
                sharded.config,
                procs=sharded.procs,
                spool_paths=[e["spool"] for e in manifest["shards"]],
                metrics_paths=[e["metrics_spool"] for e in manifest["shards"]],
                per_shard_arrivals=None,
                resume_pickles=pickle_paths,
            )
            sharded._pool.last_barrier = sharded.epoch
            sharded.handles = list(sharded._pool.handles)
        return sharded

    @staticmethod
    def _truncate_spool(path: str, offset: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(offset)

    def __repr__(self) -> str:
        return (
            f"ShardedFleet(shards={len(self.handles)}, epoch={self.epoch}, "
            f"nyms={self.config.nyms}, procs={self.procs}, "
            f"spool_dir={self.spool_dir!r})"
        )


def run_sharded_fleet(
    config: ShardConfig,
    spool_dir: str,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    stop_after_epoch: Optional[int] = None,
    procs: int = 1,
) -> ShardedRunResult:
    """One-shot driver: build, run (possibly partially), seal spools."""
    sharded = ShardedFleet(
        config, spool_dir,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
        procs=procs,
    )
    try:
        result = sharded.run(stop_after_epoch=stop_after_epoch)
    except ShardWorkerError:
        sharded.shutdown()
        raise
    if result.completed:
        sharded.close()
    else:
        # Killed mid-run: flush what we have but do not seal — the
        # resumed run writes the terminal record.
        sharded.flush()
        sharded.shutdown()
    return result


def resume_sharded_fleet(
    checkpoint_dir: str,
    checkpoint_every: int = 1,
    stop_after_epoch: Optional[int] = None,
    procs: int = 1,
) -> Tuple[ShardedFleet, ShardedRunResult]:
    """Resume from ``checkpoint_dir`` and (by default) run to completion."""
    sharded = ShardedFleet.resume(
        checkpoint_dir, checkpoint_every=checkpoint_every, procs=procs
    )
    try:
        result = sharded.run(stop_after_epoch=stop_after_epoch)
    except ShardWorkerError:
        sharded.shutdown()
        raise
    if result.completed:
        sharded.close()
    else:
        sharded.flush()
        sharded.shutdown()
    return sharded, result


# -- metrics spools -----------------------------------------------------------


def read_metrics_spool(path: str) -> List[Dict[str, object]]:
    """Parse one ``*.metrics.jsonl`` spool back into event dicts."""
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_scale_metrics(spool_dir: str) -> Dict[str, object]:
    """Read a sharded run's metrics spools back (``repro stats --scale``).

    Returns the coordinator's merged per-epoch stream plus each shard's
    own snapshots, keyed the way the spool directory lays them out.
    """
    merged_path = os.path.join(spool_dir, "metrics.metrics.jsonl")
    if not os.path.exists(merged_path):
        raise FleetError(
            f"no merged metrics spool in {spool_dir!r} "
            f"(expected {os.path.basename(merged_path)}; is this a "
            f"sharded-fleet spool directory?)"
        )
    shards: Dict[str, List[Dict[str, object]]] = {}
    for name in sorted(os.listdir(spool_dir)):
        if name.startswith("shard-") and name.endswith(".metrics.jsonl"):
            shard_key = name[: -len(".metrics.jsonl")]
            shards[shard_key] = read_metrics_spool(
                os.path.join(spool_dir, name)
            )
    return {
        "spool_dir": spool_dir,
        "merged": read_metrics_spool(merged_path),
        "shards": shards,
    }
