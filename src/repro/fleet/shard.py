"""Sharded fleet scale-out: regions, epoch barriers, checkpoint/resume.

One :class:`~repro.fleet.fleet.Fleet` on one in-memory
:class:`~repro.sim.clock.Timeline` tops out around the 64-host/1000-nym
scenario.  The paper's unlinkability story is about *populations* of
nyms, so the scale path partitions the fleet into **shards**: each shard
owns its own timeline, its own hosts, its own seeded RNG streams, and
its own journal — streamed to a JSONL spool on disk through a bounded
window — and a small coordinator advances all shards through coarse
**epoch barriers**.

Determinism is preserved by construction:

* the global arrival stream is drawn once from the run seed and
  partitioned round-robin, each arrival keeping its absolute arrival
  time, so shard membership and timing are pure functions of the seed;
* shards run strictly in shard-id order within every epoch, and the
  coordinator records per-shard and merged accounting in that same
  fixed order at each barrier — two same-seed runs produce
  byte-identical spools, shard by shard;
* host-crash faults are scheduled from a forked RNG onto (shard, epoch)
  slots and fired inline at barriers, never through timeline callbacks,
  which keeps every shard quiescent (empty event queue) at each barrier.

That quiescence is what makes **checkpoint/resume** well-defined: at a
barrier every shard is a closed object graph (timeline + fleet + cursor)
with no pending callbacks, so it pickles whole.  A checkpoint directory
holds one pickle per shard, the coordinator journal, and a manifest with
every spool's byte offset.  Resume truncates each spool to its recorded
offset (cutting anything a killed run wrote past the checkpoint) and
continues the epoch loop; the concatenated journal bytes of a resumed
run are identical to an uninterrupted same-seed run — pinned by
tests/test_fleet_shard.py and the scale-smoke CI job.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FleetCapacityError, FleetError
from repro.fleet.fleet import Fleet, FleetStats
from repro.obs.journal import EventJournal
from repro.sim.clock import Clock, Timeline
from repro.sim.rng import SeededRng
from repro.tenancy.policy import FleetPolicies
from repro.workloads.fleet import NymArrival, fleet_workload

_MANIFEST = "manifest.json"
_COORDINATOR_PKL = "coordinator.pkl"


def combined_spool_bytes(spool_paths: List[str]) -> bytes:
    """Concatenate spool files with a one-line JSON header per section.

    The canonical order (coordinator first, then shards by id) comes
    from the caller; the result is the byte-comparable whole-run record
    used by tests and the scale-smoke CI gate.
    """
    chunks: List[bytes] = []
    for path in spool_paths:
        name = os.path.splitext(os.path.basename(path))[0]
        chunks.append(
            json.dumps({"journal": name}, sort_keys=True,
                       separators=(",", ":")).encode() + b"\n"
        )
        with open(path, "rb") as handle:
            chunks.append(handle.read())
    return b"".join(chunks)


@dataclass(frozen=True)
class ShardConfig:
    """Everything that determines a sharded run, bit for bit."""

    seed: int = 0
    shards: int = 4
    hosts_per_shard: int = 16
    nyms: int = 2000
    policy: str = "ksm-aware"
    epoch_s: float = 120.0
    host_crashes: int = 0
    flash_clone: bool = True
    mean_interarrival_s: float = 0.5
    journal_window: int = 4096

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise FleetError(f"a sharded fleet needs >= 1 shard, got {self.shards}")
        if self.epoch_s <= 0:
            raise FleetError(f"epoch_s must be positive, got {self.epoch_s}")

    def shard_seed(self, shard_id: int) -> int:
        """The per-shard timeline seed: a pure function of (seed, shard)."""
        return SeededRng(self.seed).fork(f"fleet.shard.{shard_id}").seed

    def export(self) -> Dict[str, object]:
        return asdict(self)


def partition_arrivals(
    config: ShardConfig,
) -> List[List[Tuple[float, NymArrival]]]:
    """Draw the global arrival stream and split it round-robin by shard.

    Every arrival keeps its **absolute** arrival time (cumulative
    interarrival gaps over the global stream), so the per-shard streams
    stay aligned on one global clock and epoch membership is identical
    no matter how many shards share the load.
    """
    rng = SeededRng(config.seed).fork("fleet.workload")
    arrivals = fleet_workload(
        rng, config.nyms, mean_interarrival_s=config.mean_interarrival_s
    )
    per_shard: List[List[Tuple[float, NymArrival]]] = [
        [] for _ in range(config.shards)
    ]
    now = 0.0
    for index, arrival in enumerate(arrivals):
        now += arrival.interarrival_s
        per_shard[index % config.shards].append((now, arrival))
    return per_shard


class FleetShard:
    """One region: its own timeline, fleet, arrival slice, and spool."""

    def __init__(
        self,
        config: ShardConfig,
        shard_id: int,
        spool_path: str,
        arrivals: Optional[List[Tuple[float, NymArrival]]] = None,
    ) -> None:
        self.shard_id = shard_id
        self.rejected = 0
        self.cursor = 0
        if arrivals is None:
            arrivals = partition_arrivals(config)[shard_id]
        self.arrivals = arrivals
        self.timeline = Timeline(seed=config.shard_seed(shard_id))
        self.timeline.obs.journal.stream_to(spool_path, window=config.journal_window)
        self.fleet = Fleet(
            self.timeline,
            hosts=config.hosts_per_shard,
            policies=FleetPolicies(placement=config.policy),
            flash_clone=config.flash_clone,
        )
        self.timeline.obs.event(
            "shard.created", shard=shard_id, hosts=config.hosts_per_shard,
            arrivals=len(self.arrivals),
        )

    @property
    def journal(self) -> EventJournal:
        return self.timeline.obs.journal

    @property
    def done(self) -> bool:
        return self.cursor >= len(self.arrivals)

    def run_epoch(self, epoch_end: float) -> int:
        """Process every arrival due by ``epoch_end``; returns how many.

        The shard clock advances through each arrival's absolute time
        (boots may push it further — later arrivals then place
        immediately, exactly like the single-timeline scenario), ends at
        or past ``epoch_end``, and settles KSM so barrier accounting is
        converged.  The event queue is empty on return.
        """
        placed = 0
        timeline, fleet = self.timeline, self.fleet
        while self.cursor < len(self.arrivals):
            t_abs, arrival = self.arrivals[self.cursor]
            if t_abs > epoch_end:
                break
            if t_abs > timeline.now:
                timeline.sleep(t_abs - timeline.now)
            try:
                fleet.place(arrival.name, arrival.image_id)
            except FleetCapacityError:
                self.rejected += 1
            else:
                placed += 1
                if arrival.churn_bytes and arrival.name in fleet.nymboxes:
                    fleet.touch(arrival.name, arrival.churn_bytes)
            self.cursor += 1
        if epoch_end > timeline.now:
            timeline.sleep(epoch_end - timeline.now)
        fleet.settle_ksm()
        return placed

    def barrier_stats(self) -> FleetStats:
        return self.fleet.stats()


@dataclass
class ShardedRunResult:
    """What one :meth:`ShardedFleet.run` call accomplished."""

    config: ShardConfig
    epochs: int
    completed: bool
    rejected: int
    merged: Dict[str, object]
    shard_stats: List[Dict[str, object]] = field(default_factory=list)
    journal_events: int = 0
    spool_paths: List[str] = field(default_factory=list)

    def export(self) -> Dict[str, object]:
        return {
            "config": self.config.export(),
            "epochs": self.epochs,
            "completed": self.completed,
            "rejected": self.rejected,
            "merged": self.merged,
            "shards": self.shard_stats,
            "journal_events": self.journal_events,
        }


class ShardedFleet:
    """The coordinator: shards in lock-step over coarse epoch barriers."""

    def __init__(
        self,
        config: ShardConfig,
        spool_dir: str,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
    ) -> None:
        self.config = config
        self.spool_dir = str(spool_dir)
        self.checkpoint_dir = str(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = max(1, checkpoint_every)
        os.makedirs(self.spool_dir, exist_ok=True)
        if self.checkpoint_dir:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        self.epoch = 0
        self._crash_plan = self._plan_crashes()
        self._crashes_fired = 0
        # The coordinator's own journal: merged accounting per barrier,
        # streamed like every shard's.
        self._coord_clock = Clock()
        self._coord_journal = EventJournal(self._coord_clock)
        self._coord_journal.stream_to(
            self._spool_path("coordinator"), window=config.journal_window
        )
        per_shard = partition_arrivals(config)
        self.shards: List[FleetShard] = [
            FleetShard(
                config, shard_id, self._spool_path(f"shard-{shard_id:02d}"),
                arrivals=per_shard[shard_id],
            )
            for shard_id in range(config.shards)
        ]
        self._coord_journal.record(
            "coord.created", shards=config.shards, nyms=config.nyms,
            hosts=config.shards * config.hosts_per_shard, policy=config.policy,
        )

    # -- paths ---------------------------------------------------------------

    def _spool_path(self, name: str) -> str:
        return os.path.join(self.spool_dir, f"{name}.jsonl")

    def spool_paths(self) -> List[str]:
        """Coordinator first, then shards in id order — the canonical
        concatenation order for combined journal bytes."""
        return [self._spool_path("coordinator")] + [
            self._spool_path(f"shard-{s.shard_id:02d}") for s in self.shards
        ]

    # -- fault schedule ------------------------------------------------------

    def _plan_crashes(self) -> Dict[int, List[int]]:
        """(epoch -> shard ids to crash), drawn once from a forked RNG."""
        if not self.config.host_crashes:
            return {}
        rng = SeededRng(self.config.seed).fork("fleet.shard.crashes")
        expected_end = self.config.nyms * self.config.mean_interarrival_s
        max_epoch = max(1, int(expected_end / self.config.epoch_s))
        plan: Dict[int, List[int]] = {}
        for index in range(self.config.host_crashes):
            epoch = rng.randint(1, max_epoch)
            shard = index % self.config.shards
            plan.setdefault(epoch, []).append(shard)
        return plan

    def _fire_crashes(self, epoch: int, final: bool) -> None:
        due: List[int] = []
        if final:
            for pending_epoch in sorted(self._crash_plan):
                if pending_epoch >= epoch:
                    due.extend(self._crash_plan.pop(pending_epoch))
        if epoch in self._crash_plan:
            due.extend(self._crash_plan.pop(epoch))
        for shard_id in due:
            shard = self.shards[shard_id]
            crashed = shard.fleet.crash_host()
            self._crashes_fired += 1
            self._coord_journal.record(
                "coord.host_crash", shard=shard_id,
                host=crashed if crashed else "",
            )

    # -- the epoch loop ------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(shard.done for shard in self.shards) and not self._crash_plan

    def run(self, stop_after_epoch: Optional[int] = None) -> ShardedRunResult:
        """Advance epochs until every shard drained (or an early stop).

        ``stop_after_epoch`` halts after that many *additional* barriers
        — the kill half of the kill/resume story; the run stays
        resumable from its last checkpoint.
        """
        barriers = 0
        while not self.done:
            self.epoch += 1
            barriers += 1
            epoch_end = self.epoch * self.config.epoch_s
            for shard in self.shards:  # fixed shard-id order
                shard.run_epoch(epoch_end)
            final = all(shard.done for shard in self.shards)
            self._fire_crashes(self.epoch, final=final)
            self._barrier(epoch_end)
            if self.checkpoint_dir and self.epoch % self.checkpoint_every == 0:
                self.checkpoint()
            if stop_after_epoch is not None and barriers >= stop_after_epoch:
                return self._result(completed=self.done)
        return self._result(completed=True)

    def _barrier(self, epoch_end: float) -> None:
        """Merge per-shard accounting, in shard-id order, then flush."""
        self._coord_clock.advance_to(epoch_end)
        merged = self._merged_stats(record_per_shard=True)
        self._coord_journal.record("coord.epoch_merged", epoch=self.epoch, **merged)
        for shard in self.shards:
            shard.journal.flush()
        self._coord_journal.flush()

    def _merged_stats(self, record_per_shard: bool = False) -> Dict[str, object]:
        totals = {
            "hosts_up": 0, "nyms_resident": 0, "nyms_parked": 0,
            "placements": 0, "evacuations": 0, "host_crashes": 0,
            "used_bytes": 0, "total_bytes": 0, "ksm_saved_bytes": 0,
            "rejected": 0,
        }
        for shard in self.shards:
            stats = shard.barrier_stats()
            if record_per_shard:
                self._coord_journal.record(
                    "coord.shard_epoch", epoch=self.epoch, shard=shard.shard_id,
                    placed=shard.cursor - shard.rejected,
                    rejected=shard.rejected,
                    resident=stats.nyms_resident,
                    used_bytes=stats.used_bytes,
                    ksm_saved_bytes=stats.ksm_saved_bytes,
                    events=len(shard.journal),
                )
            totals["hosts_up"] += stats.hosts_up
            totals["nyms_resident"] += stats.nyms_resident
            totals["nyms_parked"] += stats.nyms_parked
            totals["placements"] += stats.placements
            totals["evacuations"] += stats.evacuations
            totals["host_crashes"] += stats.host_crashes
            totals["used_bytes"] += stats.used_bytes
            totals["total_bytes"] += stats.total_bytes
            totals["ksm_saved_bytes"] += stats.ksm_saved_bytes
            totals["rejected"] += shard.rejected
        return totals

    def _result(self, completed: bool) -> ShardedRunResult:
        merged = self._merged_stats()
        shard_stats = []
        for shard in self.shards:
            stats = shard.barrier_stats()
            shard_stats.append(
                {
                    "shard": shard.shard_id,
                    "arrivals": len(shard.arrivals),
                    "placed": shard.cursor - shard.rejected,
                    "rejected": shard.rejected,
                    "sim_seconds": round(shard.timeline.now, 3),
                    "journal_events": len(shard.journal),
                    **stats.export(),
                }
            )
        return ShardedRunResult(
            config=self.config,
            epochs=self.epoch,
            completed=completed,
            rejected=merged["rejected"],
            merged=merged,
            shard_stats=shard_stats,
            journal_events=self.journal_events(),
            spool_paths=self.spool_paths(),
        )

    def journal_events(self) -> int:
        return len(self._coord_journal) + sum(len(s.journal) for s in self.shards)

    def close(self) -> None:
        """Record the terminal merged event and seal every spool."""
        merged = self._merged_stats()
        self._coord_journal.record(
            "coord.run_complete", epochs=self.epoch,
            nyms_resident=merged["nyms_resident"],
            ksm_saved_bytes=merged["ksm_saved_bytes"],
            rejected=merged["rejected"],
        )
        for shard in self.shards:
            shard.journal.close_spool()
        self._coord_journal.close_spool()

    # -- combined journal ----------------------------------------------------

    def combined_journal_bytes(self) -> bytes:
        """Coordinator spool + shard spools in shard-id order, with one
        header line per section — the byte-comparable whole-run record."""
        return combined_spool_bytes(self.spool_paths())

    def write_combined(self, path: str) -> int:
        data = self.combined_journal_bytes()
        with open(path, "wb") as handle:
            handle.write(data)
        return len(data)

    # -- checkpoint/resume ---------------------------------------------------

    def checkpoint(self) -> str:
        """Persist the whole run at the current barrier, atomically.

        Journals were just flushed, so each shard is a quiescent object
        graph; the manifest lands last (tmp + rename) so a directory
        with a manifest is always internally consistent.
        """
        if not self.checkpoint_dir:
            raise FleetError("this ShardedFleet has no checkpoint_dir")
        for shard in self.shards:
            if not shard.timeline.quiescent:
                raise FleetError(
                    f"shard {shard.shard_id} has pending events at the barrier"
                )
            self._write_atomic(
                os.path.join(self.checkpoint_dir, f"shard-{shard.shard_id:02d}.pkl"),
                pickle.dumps(shard),
            )
        self._write_atomic(
            os.path.join(self.checkpoint_dir, _COORDINATOR_PKL),
            pickle.dumps((self._coord_clock, self._coord_journal)),
        )
        manifest = {
            "config": self.config.export(),
            "epoch": self.epoch,
            "crashes_fired": self._crashes_fired,
            "crash_plan": {str(k): v for k, v in self._crash_plan.items()},
            "spool_dir": self.spool_dir,
            "coordinator": {
                "spool": self._spool_path("coordinator"),
                "offset": self._coord_journal.spool_offset,
                "events": len(self._coord_journal),
            },
            "shards": [
                {
                    "id": shard.shard_id,
                    "spool": shard.journal.spool_path,
                    "offset": shard.journal.spool_offset,
                    "events": len(shard.journal),
                    "cursor": shard.cursor,
                    "rejected": shard.rejected,
                }
                for shard in self.shards
            ],
        }
        self._write_atomic(
            os.path.join(self.checkpoint_dir, _MANIFEST),
            (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode(),
        )
        return self.checkpoint_dir

    @staticmethod
    def _write_atomic(path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    @classmethod
    def resume(
        cls, checkpoint_dir: str, checkpoint_every: int = 1
    ) -> "ShardedFleet":
        """Rebuild a run from its checkpoint directory.

        Every spool is truncated to the offset the manifest recorded —
        a killed run may have flushed window batches past the last
        barrier, and those bytes must not survive into the resumed
        journal.
        """
        manifest_path = os.path.join(checkpoint_dir, _MANIFEST)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        sharded = cls.__new__(cls)
        sharded.config = ShardConfig(**manifest["config"])
        sharded.spool_dir = manifest["spool_dir"]
        sharded.checkpoint_dir = str(checkpoint_dir)
        sharded.checkpoint_every = max(1, checkpoint_every)
        sharded.epoch = manifest["epoch"]
        sharded._crashes_fired = manifest["crashes_fired"]
        sharded._crash_plan = {
            int(k): v for k, v in manifest["crash_plan"].items()
        }
        with open(os.path.join(checkpoint_dir, _COORDINATOR_PKL), "rb") as handle:
            sharded._coord_clock, sharded._coord_journal = pickle.load(handle)
        cls._truncate_spool(
            manifest["coordinator"]["spool"], manifest["coordinator"]["offset"]
        )
        sharded.shards = []
        for entry in manifest["shards"]:
            with open(
                os.path.join(checkpoint_dir, f"shard-{entry['id']:02d}.pkl"), "rb"
            ) as handle:
                shard = pickle.load(handle)
            cls._truncate_spool(entry["spool"], entry["offset"])
            sharded.shards.append(shard)
        return sharded

    @staticmethod
    def _truncate_spool(path: str, offset: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(offset)

    def __repr__(self) -> str:
        return (
            f"ShardedFleet(shards={len(self.shards)}, epoch={self.epoch}, "
            f"nyms={self.config.nyms}, spool_dir={self.spool_dir!r})"
        )


def run_sharded_fleet(
    config: ShardConfig,
    spool_dir: str,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: int = 1,
    stop_after_epoch: Optional[int] = None,
) -> ShardedRunResult:
    """One-shot driver: build, run (possibly partially), seal spools."""
    sharded = ShardedFleet(
        config, spool_dir,
        checkpoint_dir=checkpoint_dir, checkpoint_every=checkpoint_every,
    )
    result = sharded.run(stop_after_epoch=stop_after_epoch)
    if result.completed:
        sharded.close()
    else:
        # Killed mid-run: flush what we have but do not seal — the
        # resumed run writes the terminal record.
        for shard in sharded.shards:
            shard.journal.flush()
        sharded._coord_journal.flush()
    return result


def resume_sharded_fleet(
    checkpoint_dir: str,
    checkpoint_every: int = 1,
    stop_after_epoch: Optional[int] = None,
) -> Tuple[ShardedFleet, ShardedRunResult]:
    """Resume from ``checkpoint_dir`` and (by default) run to completion."""
    sharded = ShardedFleet.resume(checkpoint_dir, checkpoint_every=checkpoint_every)
    result = sharded.run(stop_after_epoch=stop_after_epoch)
    if result.completed:
        sharded.close()
    return sharded, result
