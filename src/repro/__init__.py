"""Nymix reproduction: managing nymboxes for identity and tracking protection.

A faithful, fully simulated reimplementation of the Nymix client OS
architecture (Wolinsky & Ford, 2014): per-pseudonym *nymboxes* (an AnonVM
for the browser plus a CommVM for the anonymizer), pluggable anonymity
transports (Tor, Dissent, incognito, SWEET), quasi-persistent encrypted
nym storage in the cloud, a sanitizing SaniVM for cross-nym file
transfer, and installed-OS nyms - on top of from-scratch substrates for
the hypervisor, union file system, virtual network, and crypto.

Quickstart (the supported entry point is the session facade)::

    from repro import NymixSession

    with NymixSession(seed=7) as nx:
        nym = nx.create_nym(name="reading-news")     # ephemeral by default
        nx.timed_browse(nym, "bbc.co.uk")
    # session exit discards every nym: amnesia, nothing remains

See DESIGN.md for the architecture map and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure and table.
"""

from repro.api import NymixSession
from repro.core.config import NymixConfig
from repro.core.manager import InstalledOsNymReport, NymManager
from repro.core.nym import Nym, NymUsageModel
from repro.core.nymbox import NymBox, StartupPhases
from repro.core.persistence import NymStore, StoreReceipt
from repro.core.requests import NymRequest, StoreNymRequest
from repro.core.validation import ValidationResult, validate_system
from repro.errors import NymixError

__version__ = "1.0.0"

__all__ = [
    "NymixSession",
    "NymixConfig",
    "NymManager",
    "NymRequest",
    "StoreNymRequest",
    "InstalledOsNymReport",
    "Nym",
    "NymUsageModel",
    "NymBox",
    "StartupPhases",
    "NymStore",
    "StoreReceipt",
    "ValidationResult",
    "validate_system",
    "NymixError",
    "__version__",
]
