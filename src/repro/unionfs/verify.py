"""Merkle-verified base layer (the §3.4 tamper-detection proposal).

The Nymix host partition must stay byte-identical to the published
distribution: any modification — even mount-time metadata — would mark
every AnonVM created from it and become a tracking vector.  Nymix cannot
stop *other* operating systems from writing to the USB stick, so §3.4
proposes checking all blocks loaded from the host partition against a
well-known Merkle tree and shutting down on mismatch.  This module
implements that check at file granularity.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import IntegrityError
from repro.unionfs.layer import Layer, normalize_path


class TamperDetected(IntegrityError):
    """A verified read found content not matching the published Merkle root."""


def commit_layer(layer: Layer) -> MerkleTree:
    """Build the published Merkle tree over a layer's (path, content) pairs."""
    leaves = [path.encode() + b"\x00" + data for path, data in layer.items()]
    return MerkleTree(leaves)


class VerifiedLayer(Layer):
    """A read-only layer whose every read is checked against a Merkle root.

    ``on_tamper`` is the safe-shutdown hook: the hypervisor registers a
    callback that halts all nymboxes before the corrupted bytes can be
    used.  The callback fires before :class:`TamperDetected` propagates.
    """

    def __init__(
        self,
        inner: Layer,
        root: bytes,
        on_tamper: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__(name=f"verified({inner.name})", read_only=True)
        self._inner = inner
        self._root = root
        self._on_tamper = on_tamper
        # Proof index built once from the layer as distributed.
        self._proofs: Dict[str, MerkleProof] = {}
        tree = commit_layer(inner)
        for leaf_index, (path, _) in enumerate(inner.items()):
            self._proofs[path] = tree.proof(leaf_index)

    # -- delegated queries ---------------------------------------------------

    def has_file(self, path: str) -> bool:
        return self._inner.has_file(path)

    def is_whited_out(self, path: str) -> bool:
        return self._inner.is_whited_out(path)

    def paths(self):
        return self._inner.paths()

    def items(self):
        return self._inner.items()

    def whiteouts(self):
        return self._inner.whiteouts()

    @property
    def file_count(self) -> int:
        return self._inner.file_count

    @property
    def used_bytes(self) -> int:
        return self._inner.used_bytes

    # -- the verified read path ---------------------------------------------

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        data = self._inner.read(path)
        proof = self._proofs.get(path)
        leaf = path.encode() + b"\x00" + data
        if proof is None or not MerkleTree.verify(self._root, leaf, proof):
            if self._on_tamper is not None:
                self._on_tamper(path)
            raise TamperDetected(
                f"{path}: base image block does not match the published Merkle root"
            )
        return data
