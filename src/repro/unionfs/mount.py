"""The union mount: stacked layers with copy-on-write semantics."""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import FileSystemError, ReadOnlyError
from repro.unionfs.layer import Layer, normalize_path


class UnionMount:
    """A stack of layers, topmost first; only the top layer may be writable.

    Reads return the file from the highest layer that has it, stopping at
    whiteouts.  Writes always land in the top layer (copy-on-write).
    Deletes remove from the top layer and, if a lower layer still has the
    file, record a whiteout so it stays hidden.
    """

    def __init__(self, layers: List[Layer]) -> None:
        if not layers:
            raise FileSystemError("a union mount needs at least one layer")
        for lower in layers[1:]:
            if not lower.read_only:
                raise FileSystemError(
                    f"lower layer {lower.name!r} must be read-only"
                )
        self.layers = list(layers)

    @property
    def top(self) -> Layer:
        return self.layers[0]

    @property
    def writable(self) -> bool:
        return not self.top.read_only

    # -- reads ------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        path = normalize_path(path)
        for layer in self.layers:
            if layer.has_file(path):
                return True
            if layer.is_whited_out(path):
                return False
        return False

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        for layer in self.layers:
            if layer.has_file(path):
                return layer.read(path)
            if layer.is_whited_out(path):
                break
        raise FileSystemError(f"{path}: no such file in union mount")

    def source_layer(self, path: str) -> Optional[str]:
        """Name of the layer a read of ``path`` would be served from."""
        path = normalize_path(path)
        for layer in self.layers:
            if layer.has_file(path):
                return layer.name
            if layer.is_whited_out(path):
                return None
        return None

    def listdir(self, directory: str) -> List[str]:
        """Immediate children (files and sub-directories) of ``directory``."""
        directory = normalize_path(directory)
        prefix = directory.rstrip("/") + "/" if directory != "/" else "/"
        children: Set[str] = set()
        hidden: Set[str] = set()
        for layer in self.layers:
            for path in layer.whiteouts():
                hidden.add(path)
            for path in layer.paths():
                if path in hidden or not path.startswith(prefix):
                    continue
                remainder = path[len(prefix) :]
                children.add(remainder.split("/", 1)[0])
        return sorted(children)

    def walk(self) -> List[str]:
        """Every visible file path in the mount."""
        visible: List[str] = []
        hidden: Set[str] = set()
        seen: Set[str] = set()
        for layer in self.layers:
            for path in layer.whiteouts():
                hidden.add(path)
            for path in layer.paths():
                if path not in hidden and path not in seen:
                    visible.append(path)
                    seen.add(path)
            # files in this layer also shadow lower ones
            hidden.update(layer.paths())
        return sorted(visible)

    # -- writes ------------------------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        if not self.writable:
            raise ReadOnlyError("union mount has no writable top layer")
        self.top.write(path, data)

    def remove(self, path: str) -> None:
        if not self.writable:
            raise ReadOnlyError("union mount has no writable top layer")
        path = normalize_path(path)
        if not self.exists(path):
            # Covers both never-existed and already-whited-out paths.
            raise FileSystemError(f"{path}: no such file in union mount")
        if self.top.has_file(path):
            self.top.remove(path)
        if any(layer.has_file(path) for layer in self.layers[1:]):
            self.top.add_whiteout(path)

    # -- accounting ----------------------------------------------------------------

    @property
    def ram_bytes(self) -> int:
        """Bytes of RAM consumed by the writable top layer."""
        return self.top.used_bytes if self.writable else 0

    def discard_changes(self) -> int:
        """Drop every write (ephemeral-nym teardown).  Returns bytes freed."""
        if not self.writable:
            return 0
        return self.top.clear()

    def __repr__(self) -> str:
        names = " -> ".join(layer.name for layer in self.layers)
        return f"UnionMount({names})"
