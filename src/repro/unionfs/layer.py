"""File-system layers: the building blocks of a union mount."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.errors import FileSystemError, ReadOnlyError


def normalize_path(path: str) -> str:
    """Canonicalize to an absolute, ``/``-separated path with no dots."""
    if not path:
        raise FileSystemError("empty path")
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if not parts:
                raise FileSystemError(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(part)
    return "/" + "/".join(parts)


class Layer:
    """One layer of a union mount: a flat map of paths to file contents.

    Directories are implicit (any path prefix of a stored file).  A layer
    can also carry *whiteouts* — markers that hide a lower layer's file,
    which is how deletes work without touching read-only layers.
    """

    def __init__(
        self,
        name: str,
        files: Optional[Dict[str, bytes]] = None,
        read_only: bool = False,
    ) -> None:
        self.name = name
        self.read_only = read_only
        self._files: Dict[str, bytes] = {}
        self._whiteouts: Set[str] = set()
        self._used_bytes = 0
        # Optional single observer of used-byte deltas.  The hypervisor
        # attaches one to each VM's writable top layer so host-wide FS
        # accounting stays O(1) per snapshot instead of O(VMs).
        self._delta_listener = None
        for path, data in (files or {}).items():
            path_n = normalize_path(path)
            previous = self._files.get(path_n)
            if previous is not None:
                self._used_bytes -= len(previous)
            self._files[path_n] = bytes(data)
            self._used_bytes += len(data)

    # -- queries ---------------------------------------------------------------

    def has_file(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def is_whited_out(self, path: str) -> bool:
        return normalize_path(path) in self._whiteouts

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        if path not in self._files:
            raise FileSystemError(f"{path}: not present in layer {self.name!r}")
        return self._files[path]

    def paths(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def items(self) -> Iterator[Tuple[str, bytes]]:
        return iter(sorted(self._files.items()))

    def whiteouts(self) -> Iterator[str]:
        return iter(sorted(self._whiteouts))

    @property
    def file_count(self) -> int:
        return len(self._files)

    @property
    def used_bytes(self) -> int:
        # Maintained incrementally by the mutators below: placement and
        # admission decisions poll this per candidate host, so it must not
        # cost O(files).
        return self._used_bytes

    # -- mutation ------------------------------------------------------------

    def set_delta_listener(self, listener) -> None:
        """Register (or clear, with ``None``) the used-bytes delta observer."""
        self._delta_listener = listener

    def _notify(self, delta: int) -> None:
        if delta and self._delta_listener is not None:
            self._delta_listener(delta)

    def _check_writable(self) -> None:
        if self.read_only:
            raise ReadOnlyError(f"layer {self.name!r} is read-only")

    def write(self, path: str, data: bytes) -> None:
        self._check_writable()
        path = normalize_path(path)
        previous = self._files.get(path)
        delta = len(data) - (len(previous) if previous is not None else 0)
        if previous is not None:
            self._used_bytes -= len(previous)
        self._files[path] = bytes(data)
        self._used_bytes += len(data)
        self._whiteouts.discard(path)
        self._notify(delta)

    def remove(self, path: str) -> None:
        self._check_writable()
        path = normalize_path(path)
        if path not in self._files:
            raise FileSystemError(f"{path}: not present in layer {self.name!r}")
        freed = len(self._files[path])
        self._used_bytes -= freed
        del self._files[path]
        self._notify(-freed)

    def add_whiteout(self, path: str) -> None:
        self._check_writable()
        path = normalize_path(path)
        previous = self._files.pop(path, None)
        if previous is not None:
            self._used_bytes -= len(previous)
            self._notify(-len(previous))
        self._whiteouts.add(path)

    def clear(self) -> int:
        """Drop all files and whiteouts (tmpfs teardown).  Returns bytes freed."""
        self._check_writable()
        freed = self._used_bytes
        self._files.clear()
        self._whiteouts.clear()
        self._used_bytes = 0
        self._notify(-freed)
        return freed

    def __repr__(self) -> str:
        mode = "ro" if self.read_only else "rw"
        return f"Layer({self.name!r}, {mode}, files={self.file_count})"


class TmpfsLayer(Layer):
    """A RAM-backed writable layer with a capacity limit.

    Nymix gives each VM a fixed writable-image budget (e.g. 128 MB for an
    AnonVM in §5.2); writes past the budget fail like a full tmpfs would.
    """

    def __init__(self, name: str, capacity_bytes: int) -> None:
        super().__init__(name, read_only=False)
        if capacity_bytes <= 0:
            raise FileSystemError(f"tmpfs capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes

    def write(self, path: str, data: bytes) -> None:
        path_n = normalize_path(path)
        existing = len(self._files.get(path_n, b""))
        projected = self.used_bytes - existing + len(data)
        if projected > self.capacity_bytes:
            raise FileSystemError(
                f"tmpfs {self.name!r} full: {projected} > {self.capacity_bytes} bytes"
            )
        super().write(path, data)
