"""Union file system: OverlayFS-style stacked layers with copy-on-write.

Nymix differentiates one shared base OS image into hypervisor, AnonVM,
CommVM and SaniVM roles by stacking three layers (§3.4):

1. the read-only **base** layer (the USB stick's OS partition),
2. a read-only **configuration** layer masking role-specific files
   (network config, ``/etc/rc.local``, window-manager startup),
3. a RAM-backed writable **tmpfs** layer receiving all writes.

:class:`UnionMount` implements the stack; :class:`VerifiedLayer` adds the
§3.4 Merkle-tree check that shuts the system down if a base block was
tampered with while the USB stick was out of the user's control.
"""

from repro.unionfs.layer import Layer, TmpfsLayer
from repro.unionfs.mount import UnionMount
from repro.unionfs.verify import TamperDetected, VerifiedLayer

__all__ = [
    "Layer",
    "TmpfsLayer",
    "UnionMount",
    "VerifiedLayer",
    "TamperDetected",
]
