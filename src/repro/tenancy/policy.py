"""Declarative tenant policy objects.

Policies are frozen dataclasses: a :class:`TenantPolicy` bundles a quota, a
rate limit, and a QoS class under a tenant name, and a
:class:`FleetPolicies` object carries everything the fleet needs to know
about placement, watermarks, tenants, and autoscaling in one value.  The
objects themselves enforce nothing — they are handed to a
``TenantRegistry`` (commit/delete reconciliation) or a ``Fleet``
(construction-time application), which do the enforcing.

This module deliberately imports nothing from ``repro.fleet``: placement
policy is carried as a *name* (or any object the fleet accepts) so the
tenancy layer stays below the fleet in the import graph.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import TenancyError


@dataclass(frozen=True)
class QosClass:
    """A strict-priority service class for ingress traffic.

    Lower ``priority`` is served first: a class only transmits when every
    lower-numbered class's backlog has cleared.
    """

    name: str
    priority: int

    def __post_init__(self) -> None:
        if not self.name:
            raise TenancyError("QosClass needs a non-empty name")
        if self.priority < 0:
            raise TenancyError(f"QosClass priority must be >= 0: {self.priority}")


#: The three built-in service classes, best first.
GOLD = QosClass("gold", 0)
SILVER = QosClass("silver", 1)
BRONZE = QosClass("bronze", 2)

QOS_CLASSES: Dict[str, QosClass] = {q.name: q for q in (GOLD, SILVER, BRONZE)}


@dataclass(frozen=True)
class QuotaPolicy:
    """Static ceilings on what a tenant may hold at once.

    ``None`` means unlimited on that axis.
    """

    max_nyms: Optional[int] = None
    max_ram_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_nyms is not None and self.max_nyms < 0:
            raise TenancyError(f"max_nyms must be >= 0: {self.max_nyms}")
        if self.max_ram_bytes is not None and self.max_ram_bytes < 0:
            raise TenancyError(f"max_ram_bytes must be >= 0: {self.max_ram_bytes}")

    @property
    def unlimited(self) -> bool:
        return self.max_nyms is None and self.max_ram_bytes is None


@dataclass(frozen=True)
class RateLimitPolicy:
    """Token-bucket rates for a tenant.  Zero/None disables an axis.

    ``launch_rate_per_s`` meters *admission attempts* (nym launches) and
    rejects when the bucket is dry; ``ingress_bytes_per_s`` meters traffic
    at the anonymizer send path and *delays* rather than rejects.
    """

    launch_rate_per_s: float = 0.0
    launch_burst: float = 4.0
    ingress_bytes_per_s: float = 0.0
    ingress_burst_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in ("launch_rate_per_s", "launch_burst",
                     "ingress_bytes_per_s", "ingress_burst_bytes"):
            value = getattr(self, name)
            if value < 0:
                raise TenancyError(f"{name} must be >= 0: {value}")
        if self.launch_rate_per_s and self.launch_burst < 1.0:
            raise TenancyError("launch_burst must be >= 1 when launch rate is set")

    @property
    def unlimited(self) -> bool:
        return not self.launch_rate_per_s and not self.ingress_bytes_per_s


@dataclass(frozen=True)
class TenantPolicy:
    """Everything the control plane knows about one tenant.

    The empty name is reserved for the :data:`UNLIMITED` sentinel
    (untenanted traffic); registering a policy requires a real name.
    """

    name: str
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)
    rate: RateLimitPolicy = field(default_factory=RateLimitPolicy)
    qos: QosClass = SILVER

    @property
    def unlimited(self) -> bool:
        return self.quota.unlimited and self.rate.unlimited


#: Default policy applied to tenants nobody registered: everything goes.
UNLIMITED = TenantPolicy("", quota=QuotaPolicy(), rate=RateLimitPolicy())


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermark-driven host scaling for the fleet.

    Every ``interval_s`` the autoscaler compares cluster memory utilisation
    against the watermarks: above ``scale_up_pressure`` it adds ``step``
    hosts (up to ``max_hosts``); below ``scale_down_pressure`` it drains
    and removes the emptiest host (down to ``min_hosts``).
    """

    min_hosts: int = 1
    max_hosts: int = 64
    scale_up_pressure: float = 0.80
    scale_down_pressure: float = 0.30
    step: int = 1
    interval_s: float = 30.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_hosts <= self.max_hosts:
            raise TenancyError(
                f"need 1 <= min_hosts <= max_hosts: {self.min_hosts}/{self.max_hosts}"
            )
        if not 0.0 < self.scale_down_pressure < self.scale_up_pressure <= 1.0:
            raise TenancyError(
                "need 0 < scale_down_pressure < scale_up_pressure <= 1: "
                f"{self.scale_down_pressure}/{self.scale_up_pressure}"
            )
        if self.step < 1:
            raise TenancyError(f"step must be >= 1: {self.step}")
        if self.interval_s <= 0:
            raise TenancyError(f"interval_s must be > 0: {self.interval_s}")


@dataclass(frozen=True)
class FleetPolicies:
    """The one policy object a :class:`repro.fleet.Fleet` is built from.

    Replaces the old loose ``policy=`` / ``high_watermark=`` /
    ``low_watermark=`` constructor kwargs.  ``placement`` is a policy name
    (resolved via ``repro.fleet.make_policy``) or a ready policy object.
    """

    placement: Any = "first-fit"
    high_watermark: float = 0.90
    low_watermark: float = 0.80
    tenants: Tuple[TenantPolicy, ...] = ()
    autoscale: Optional[AutoscalePolicy] = None

    def __post_init__(self) -> None:
        names = [t.name for t in self.tenants]
        if any(not n for n in names):
            raise TenancyError("registered tenants need non-empty names")
        if len(names) != len(set(names)):
            raise TenancyError(f"duplicate tenant names in FleetPolicies: {names}")

    def with_placement(self, placement: Any) -> "FleetPolicies":
        return replace(self, placement=placement)


# ---------------------------------------------------------------------------
# JSON loading — the one parser shared by the API and every CLI subcommand.
# ---------------------------------------------------------------------------

def _quota_from_dict(obj: Mapping[str, Any]) -> QuotaPolicy:
    return QuotaPolicy(
        max_nyms=obj.get("max_nyms"),
        max_ram_bytes=obj.get("max_ram_bytes"),
    )


def _rate_from_dict(obj: Mapping[str, Any]) -> RateLimitPolicy:
    kwargs = {}
    for name in ("launch_rate_per_s", "launch_burst",
                 "ingress_bytes_per_s", "ingress_burst_bytes"):
        if name in obj:
            kwargs[name] = obj[name]
    return RateLimitPolicy(**kwargs)


def tenant_from_dict(obj: Mapping[str, Any]) -> TenantPolicy:
    """Build a :class:`TenantPolicy` from a plain dict (parsed JSON)."""
    if not obj.get("name"):
        raise TenancyError(f"tenant entry needs a 'name': {obj!r}")
    qos_name = obj.get("qos", SILVER.name)
    if qos_name not in QOS_CLASSES:
        raise TenancyError(
            f"unknown qos class {qos_name!r}; choose from {sorted(QOS_CLASSES)}"
        )
    return TenantPolicy(
        name=obj["name"],
        quota=_quota_from_dict(obj.get("quota", {})),
        rate=_rate_from_dict(obj.get("rate", {})),
        qos=QOS_CLASSES[qos_name],
    )


def policies_from_dict(obj: Mapping[str, Any]) -> FleetPolicies:
    """Build a :class:`FleetPolicies` from a plain dict (parsed JSON).

    Recognised keys: ``placement``, ``high_watermark``, ``low_watermark``,
    ``tenants`` (list of tenant dicts), ``autoscale`` (dict).
    """
    unknown = set(obj) - {
        "placement", "high_watermark", "low_watermark", "tenants", "autoscale",
    }
    if unknown:
        raise TenancyError(f"unknown tenant-config keys: {sorted(unknown)}")
    kwargs: Dict[str, Any] = {}
    for name in ("placement", "high_watermark", "low_watermark"):
        if name in obj:
            kwargs[name] = obj[name]
    tenants = tuple(tenant_from_dict(entry) for entry in obj.get("tenants", []))
    autoscale = None
    if obj.get("autoscale") is not None:
        autoscale = AutoscalePolicy(**obj["autoscale"])
    return FleetPolicies(tenants=tenants, autoscale=autoscale, **kwargs)


def load_tenant_config(path: str) -> FleetPolicies:
    """Parse a ``--tenant-config`` JSON file into a :class:`FleetPolicies`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            obj = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TenancyError(f"cannot read tenant config {path}: {exc}") from exc
    if not isinstance(obj, dict):
        raise TenancyError(f"tenant config {path} must be a JSON object")
    return policies_from_dict(obj)
