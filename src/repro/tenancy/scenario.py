"""`run_tenants`: the multi-tenant control-plane scenario behind `repro tenants`.

Runs a two-tenant fleet through the whole control-plane story on one
seeded timeline: admission (one tenant is over quota, the other's launch
bucket runs dry), ingress shaping (the rate-limited tenant bursts past
its byte rate and absorbs the debt as strict-priority throttle delay), a
mid-run policy update reconciled at a deterministic boundary, and a
rolling drain of several hosts that must lose zero nyms.  Same seed,
same policy set → byte-identical journal; the per-tenant outcome table
is the BENCH_tenants.json payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.fleet import DrainReport, Fleet, FleetStats
from repro.sim.clock import Timeline
from repro.tenancy.policy import (
    GOLD,
    BRONZE,
    FleetPolicies,
    QuotaPolicy,
    RateLimitPolicy,
    TenantPolicy,
)
from repro.tenancy.registry import TenantRegistry
from repro.vmm.vm import MIB
from repro.workloads.fleet import tenant_workload

#: Arrivals admitted per :meth:`Fleet.place_many` wave.
WAVE_SIZE = 16
#: Shared ingress link capacity (bytes/s) strict-priority-shared by QoS class.
INGRESS_CAPACITY_BPS = 32 * MIB


def default_tenant_policies(nyms: int) -> FleetPolicies:
    """The acceptance policy set: ``alpha`` over quota, ``beta`` bursting.

    ``alpha`` (bronze) gets a nym quota well under its share of the
    arrival stream, so quota rejections are guaranteed; ``beta`` (gold)
    is unlimited in count but metered in launch rate and ingress bytes,
    so its bursts convert into rate rejections and throttle delay.
    """
    return FleetPolicies(
        tenants=(
            TenantPolicy(
                "alpha",
                quota=QuotaPolicy(max_nyms=max(2, nyms // 10)),
                qos=BRONZE,
            ),
            TenantPolicy(
                "beta",
                rate=RateLimitPolicy(
                    launch_rate_per_s=0.02,
                    launch_burst=2.0,
                    ingress_bytes_per_s=8 * MIB,
                    ingress_burst_bytes=16 * MIB,
                ),
                qos=GOLD,
            ),
        )
    )


@dataclass
class TenantsReport:
    """The BENCH_tenants.json payload: per-tenant outcomes plus the drain."""

    seed: int
    hosts: int
    nyms: int
    chaos: bool
    tenants: List[Dict[str, object]] = field(default_factory=list)
    drain: Optional[DrainReport] = None
    stats: Optional[FleetStats] = None
    sim_seconds: float = 0.0
    journal_events: int = 0
    reconciles: int = 0
    faults: List[Dict[str, object]] = field(default_factory=list)

    @property
    def zero_lost(self) -> bool:
        return self.drain is None or self.drain.lost == 0

    def tenant(self, name: str) -> Dict[str, object]:
        for row in self.tenants:
            if row["tenant"] == name:
                return row
        raise KeyError(name)

    def export(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "bench": "tenants",
            "seed": self.seed,
            "hosts": self.hosts,
            "nyms": self.nyms,
            "chaos": self.chaos,
            "sim_seconds": round(self.sim_seconds, 3),
            "journal_events": self.journal_events,
            "reconciles": self.reconciles,
            "zero_lost": self.zero_lost,
            "tenants": self.tenants,
        }
        if self.drain is not None:
            payload["drain"] = self.drain.export()
        if self.stats is not None:
            payload["fleet"] = self.stats.export()
        if self.faults:
            payload["faults"] = self.faults
        return payload

    def summary(self) -> str:
        lines = [
            f"tenants bench: {self.nyms} arrivals over {self.hosts} hosts "
            f"(seed {self.seed}{', chaos' if self.chaos else ''})",
            f"{'tenant':<10} {'nyms':>5} {'admit':>6} {'q-rej':>6} "
            f"{'r-rej':>6} {'c-rej':>6} {'thrtl':>6} {'thr s':>8} "
            f"{'evac':>5} {'sent MiB':>9}",
        ]
        for row in self.tenants:
            lines.append(
                f"{row['tenant']:<10} {row['nyms']:>5} {row['admitted']:>6} "
                f"{row['rejected_quota']:>6} {row['rejected_rate']:>6} "
                f"{row['rejected_capacity']:>6} {row['throttled']:>6} "
                f"{row['throttle_seconds']:>8.2f} {row['evacuations']:>5} "
                f"{row['bytes_sent'] / MIB:>9.1f}"
            )
        if self.drain is not None:
            d = self.drain
            lines.append(
                f"rolling drain: {len(d.hosts)} hosts, {d.evacuated} evacuated "
                f"({d.relaunched} relaunched, {d.parked} parked, {d.lost} lost)"
            )
        lines.append(f"zero nyms lost: {'yes' if self.zero_lost else 'NO'}")
        return "\n".join(lines)


def _chaos_plan(expected_s: float) -> FaultPlan:
    """Drain-during-crash plus a traffic burst, at fixed fractions of the
    expected run: the drain starts, its relaunch boots are still landing
    2 s later when a host crash rips through the same cluster."""
    return FaultPlan(
        [
            FaultSpec(at_s=0.25 * expected_s, kind="tenancy.tenant_burst",
                      param=32.0),
            FaultSpec(at_s=0.50 * expected_s, kind="fleet.host_drain"),
            FaultSpec(at_s=0.50 * expected_s + 2.0, kind="fleet.host_crash"),
        ]
    )


def run_tenants(
    seed: int = 0,
    hosts: int = 64,
    nyms: int = 240,
    drain_hosts: int = 8,
    placement: str = "first-fit",
    chaos: bool = False,
    journal_path: Optional[str] = None,
    out_path: Optional[str] = "BENCH_tenants.json",
    policies: Optional[FleetPolicies] = None,
    upgrade_s: float = 5.0,
) -> TenantsReport:
    """Run the multi-tenant acceptance scenario.

    ``policies`` (e.g. from ``--tenant-config``) replaces the default
    two-tenant set; its tenant names drive the workload's weighted
    attribution.  The mid-run policy update doubles the first quota-bearing
    tenant's nym ceiling and waits out the reconciliation boundary, so the
    journal records one deterministic ``tenancy.reconciled`` tick.
    """
    timeline = Timeline(seed=seed)
    base = policies if policies is not None else default_tenant_policies(nyms)
    if not base.tenants:
        base = replace(base, tenants=default_tenant_policies(nyms).tenants)
    registry = TenantRegistry(
        timeline, ingress_capacity_bps=INGRESS_CAPACITY_BPS
    ).attach()
    fleet = Fleet(
        timeline, hosts=hosts, policies=base.with_placement(placement)
    )
    tenant_names = [t.name for t in base.tenants]
    arrivals = tenant_workload(
        timeline.fork_rng("tenants.workload"), nyms, tenant_names
    )

    if chaos:
        expected_s = max(60.0, nyms * 10.5)
        FaultInjector(timeline, _chaos_plan(expected_s)).arm(manager=fleet)

    waves = [
        arrivals[i:i + WAVE_SIZE] for i in range(0, len(arrivals), WAVE_SIZE)
    ]
    update_after = len(waves) // 2
    for index, wave in enumerate(waves):
        timeline.sleep(sum(a.interarrival_s for a in wave))
        results = fleet.place_many(wave, on_reject="skip")
        for arrival, result in zip(wave, results):
            if not result:
                continue
            if arrival.churn_bytes:
                fleet.touch(arrival.name, arrival.churn_bytes)
            # One send per admitted nym: shaping waits out bucket debt and
            # the strict-priority backlog, then the completed transfer is
            # charged (debt-based — the *next* send absorbs the overdraft).
            delay = registry.shape(arrival.tenant)
            if delay > 0.0:
                timeline.sleep(delay)
            registry.record_sent(
                arrival.tenant, max(MIB, arrival.churn_bytes)
            )
        if index + 1 == update_after:
            # Mid-run control-plane update: relax the first quota-bearing
            # tenant.  Staged now, applied at the next boundary — traffic
            # between here and the boundary still sees the old ceiling.
            for policy in base.tenants:
                if policy.quota.max_nyms is not None:
                    registry.commit(
                        replace(
                            policy,
                            quota=replace(
                                policy.quota,
                                max_nyms=policy.quota.max_nyms * 2,
                            ),
                        )
                    )
                    registry.wait_reconciled()
                    break

    drain_report = None
    if drain_hosts:
        drain_report = fleet.rolling_drain(count=drain_hosts, upgrade_s=upgrade_s)
    fleet.settle_ksm()
    stats = fleet.stats()
    timeline.obs.event(
        "tenants.run_complete",
        tenants=tenant_names,
        resident=stats.nyms_resident,
        lost=0 if drain_report is None else drain_report.lost,
    )
    report = TenantsReport(
        seed=seed,
        hosts=hosts,
        nyms=nyms,
        chaos=chaos,
        tenants=registry.report(),
        drain=drain_report,
        stats=stats,
        sim_seconds=timeline.now,
        journal_events=timeline.obs.journal.count(),
        reconciles=sum(1 for entry in registry.audit if entry["action"] == "commit"),
        faults=list(timeline.faults.injected) if chaos else [],
    )
    if journal_path:
        timeline.obs.journal.write_jsonl(journal_path)
    if out_path:
        with open(out_path, "w") as fh:
            json.dump(report.export(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report
