"""Watermark-driven fleet autoscaling.

The autoscaler is a periodic timeline tick: every ``interval_s`` it
compares cluster memory utilisation (used / total across live,
non-draining hosts) against the policy watermarks and either adds hosts
or drains-and-removes the emptiest one.  It runs *inside* a timeline
callback, so every action it takes must complete without advancing the
clock — host adds are instant, and scale-down drains use the fleet's
non-advancing evacuation path.

The tick is only scheduled when an :class:`AutoscalePolicy` is
configured, so fleets without autoscaling keep byte-identical journals.
``stop()`` cancels the pending tick; scenarios call it before settling
so the timeline can go quiescent.
"""

from __future__ import annotations

from typing import Optional

from repro.tenancy.policy import AutoscalePolicy


class Autoscaler:
    """Periodic scale-up/scale-down driver for one fleet."""

    def __init__(self, fleet, policy: AutoscalePolicy) -> None:
        self.fleet = fleet
        self.policy = policy
        self.timeline = fleet.timeline
        self.scale_ups = 0
        self.scale_downs = 0
        self._tick = None
        self._active = False

    def start(self) -> "Autoscaler":
        """Schedule the first tick; idempotent."""
        if not self._active:
            self._active = True
            self._schedule()
        return self

    def stop(self) -> None:
        """Cancel the pending tick so the timeline can go quiescent."""
        self._active = False
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None

    def _schedule(self) -> None:
        self._tick = self.timeline.after(self.policy.interval_s, self._on_tick)

    def _on_tick(self) -> None:
        self._tick = None
        if not self._active:
            return
        self.evaluate()
        if self._active:
            self._schedule()

    # -- one scaling decision ---------------------------------------------

    def utilization(self) -> Optional[float]:
        """Cluster memory utilisation over serving hosts, or None if empty."""
        used = total = 0
        for host in self.fleet.serving_hosts():
            used += host.used_bytes
            total += host.total_bytes
        if total == 0:
            return None
        return used / total

    def evaluate(self) -> Optional[str]:
        """Apply one scaling decision; returns "up", "down", or None."""
        policy = self.policy
        hosts = len(self.fleet.serving_hosts())
        pressure = self.utilization()
        if pressure is None:
            return None
        obs = self.timeline.obs
        if pressure >= policy.scale_up_pressure and hosts < policy.max_hosts:
            step = min(policy.step, policy.max_hosts - hosts)
            added = self.fleet.add_hosts(step)
            self.scale_ups += 1
            obs.metrics.counter("tenancy.scale_up").inc()
            obs.event(
                "tenancy.scale_up",
                hosts=[h.host_id for h in added],
                pressure=round(pressure, 6),
            )
            return "up"
        if pressure <= policy.scale_down_pressure and hosts > policy.min_hosts:
            victim = self._emptiest()
            if victim is None:
                return None
            # Non-advancing drain: we are inside a timeline callback.
            self.fleet.drain_host(victim, advance=False, remove=True)
            self.scale_downs += 1
            obs.metrics.counter("tenancy.scale_down").inc()
            obs.event(
                "tenancy.scale_down",
                host=victim,
                pressure=round(pressure, 6),
            )
            return "down"
        return None

    def _emptiest(self) -> Optional[str]:
        """The serving host with the fewest residents (ties: lowest id)."""
        best = None
        best_key = None
        for host in self.fleet.serving_hosts():
            key = (len(host.residents), host.host_id)
            if best_key is None or key < best_key:
                best, best_key = host.host_id, key
        return best
