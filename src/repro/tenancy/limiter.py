"""Sim-time rate limiting primitives: token buckets and strict priority.

Both models are *analytic*: nothing here schedules events.  Callers ask
"how long must this wait?", sleep on their own timeline, then charge the
cost.  That keeps the limiter usable from any context — including
timeline callbacks, where sleeping is forbidden — and keeps same-seed
runs byte-identical because every answer is a pure function of
(state, now, cost).
"""

from __future__ import annotations

from typing import List


class TokenBucket:
    """A continuously refilling token bucket.

    Two disciplines are offered:

    * :meth:`try_consume` — classic reject-if-dry, used for launch
      admission where the caller turns "no token" into a typed rejection.
    * :meth:`charge` + :meth:`deficit_wait` — debt-based shaping for the
      ingress path: a send is never refused, but it must first wait out
      the debt left by earlier sends, which converges to the configured
      rate while letting bursts through up to the bucket capacity.
    """

    __slots__ = ("rate", "capacity", "tokens", "stamp")

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.stamp = float(now)

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.stamp) * self.rate
            )
            self.stamp = now

    def available(self, now: float) -> float:
        """Token balance at ``now`` (may be negative under debt)."""
        self._refill(now)
        return self.tokens

    def try_consume(self, now: float, cost: float = 1.0) -> bool:
        """Take ``cost`` tokens if the balance covers them."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False

    def charge(self, now: float, cost: float) -> None:
        """Take ``cost`` tokens unconditionally; the balance may go negative."""
        self._refill(now)
        self.tokens -= cost

    def deficit_wait(self, now: float) -> float:
        """Seconds until the balance returns to zero (0.0 if not in debt)."""
        self._refill(now)
        if self.tokens >= 0.0:
            return 0.0
        return -self.tokens / self.rate

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TokenBucket(rate={self.rate}, capacity={self.capacity}, "
            f"tokens={self.tokens:.3f}@{self.stamp:.3f})"
        )


class PriorityLink:
    """A shared link served in strict priority order.

    Each class keeps a ``clear_at`` timestamp: the sim time its backlog
    drains.  A send in class *p* may start only once every class with
    priority <= *p* has cleared, so lower-numbered (better) classes are
    never delayed by worse ones, while worse classes absorb the queueing.
    """

    __slots__ = ("capacity_bps", "clear_at")

    def __init__(self, capacity_bps: float, classes: int = 3) -> None:
        if capacity_bps <= 0:
            raise ValueError(f"capacity_bps must be > 0: {capacity_bps}")
        if classes < 1:
            raise ValueError(f"need at least one class: {classes}")
        self.capacity_bps = float(capacity_bps)
        self.clear_at: List[float] = [0.0] * classes

    def _start(self, now: float, priority: int) -> float:
        return max(now, max(self.clear_at[: priority + 1]))

    def queue_delay(self, now: float, priority: int) -> float:
        """How long a class-``priority`` send must wait before starting."""
        return max(0.0, self._start(now, priority) - now)

    def charge(self, now: float, priority: int, payload_bytes: int) -> float:
        """Occupy the link for one send; returns its service time."""
        service_s = payload_bytes / self.capacity_bps
        self.clear_at[priority] = self._start(now, priority) + service_s
        return service_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PriorityLink(capacity={self.capacity_bps}, clear_at={self.clear_at})"
