"""Multi-tenant control plane: policies, enforcement, and lifecycle ops.

The package layers on top of ``repro.fleet`` (quota admission, drain,
autoscale) and the anonymizer ingress (token-bucket shaping with strict
QoS priority) without either of them importing it at module scope —
``timeline.tenancy`` carries the live registry, defaulting to the shared
no-op ``NULL_TENANCY``.

The tenants *scenario* (``repro.tenancy.scenario``) pulls in the fleet
and workload layers, so it is imported on demand (mirroring
``repro.faults.chaos``) rather than from here.
"""

from repro.tenancy.autoscale import Autoscaler
from repro.tenancy.limiter import PriorityLink, TokenBucket
from repro.tenancy.policy import (
    BRONZE,
    GOLD,
    QOS_CLASSES,
    SILVER,
    UNLIMITED,
    AutoscalePolicy,
    FleetPolicies,
    QosClass,
    QuotaPolicy,
    RateLimitPolicy,
    TenantPolicy,
    load_tenant_config,
    policies_from_dict,
    tenant_from_dict,
)
from repro.tenancy.registry import (
    NULL_TENANCY,
    REASON_CAPACITY,
    REASON_QUOTA,
    REASON_RATE,
    NullTenancy,
    TenantAccount,
    TenantRegistry,
)

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "BRONZE",
    "FleetPolicies",
    "GOLD",
    "NULL_TENANCY",
    "NullTenancy",
    "PriorityLink",
    "QOS_CLASSES",
    "QosClass",
    "QuotaPolicy",
    "RateLimitPolicy",
    "REASON_CAPACITY",
    "REASON_QUOTA",
    "REASON_RATE",
    "SILVER",
    "TenantAccount",
    "TenantPolicy",
    "TenantRegistry",
    "TokenBucket",
    "UNLIMITED",
    "load_tenant_config",
    "policies_from_dict",
    "tenant_from_dict",
]
