"""The tenant registry: policy lifecycle, accounting, and enforcement.

The registry is the control plane's live state.  Policies reach it two
ways:

* ``apply_initial(...)`` — construction-time application (the fleet's
  ``FleetPolicies.tenants``): takes effect immediately, before any
  traffic, so there is no reconciliation boundary to wait for.
* ``commit(policy)`` / ``delete(name)`` — the Kuadrant-style lifecycle:
  mutations are *staged* and applied together at the next multiple of
  ``boundary_s`` strictly after now.  Every same-seed run stages the same
  mutations at the same sim times, so the boundary — and therefore every
  enforcement decision downstream of it — is deterministic.

Control-plane mutations write an in-registry audit log and metrics, not
journal events; only *data-plane* effects (throttles, bursts, the
reconcile tick itself) reach the journal.  A registry whose policies are
all unlimited therefore produces a journal byte-identical to a run with
no registry at all.

``NULL_TENANCY`` is the shared no-op following the ``NULL_OBS`` /
``NULL_FAULTS`` idiom: ``timeline.tenancy`` always answers, and the
disabled answer is always "no limits, zero delay".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import TenancyError
from repro.tenancy.limiter import PriorityLink, TokenBucket
from repro.tenancy.policy import UNLIMITED, TenantPolicy

#: Rejection reason strings shared by fleet admission and reports.
REASON_CAPACITY = "capacity"
REASON_QUOTA = "quota"
REASON_RATE = "rate"


@dataclass
class TenantAccount:
    """Mutable per-tenant counters; the source of truth for reports."""

    name: str
    nyms: int = 0
    ram_bytes: int = 0
    admitted: int = 0
    rejected_capacity: int = 0
    rejected_quota: int = 0
    rejected_rate: int = 0
    throttled: int = 0
    throttle_seconds: float = 0.0
    evacuations: int = 0
    sends: int = 0
    bytes_sent: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.name,
            "nyms": self.nyms,
            "ram_bytes": self.ram_bytes,
            "admitted": self.admitted,
            "rejected_capacity": self.rejected_capacity,
            "rejected_quota": self.rejected_quota,
            "rejected_rate": self.rejected_rate,
            "throttled": self.throttled,
            "throttle_seconds": round(self.throttle_seconds, 6),
            "evacuations": self.evacuations,
            "sends": self.sends,
            "bytes_sent": self.bytes_sent,
        }


class NullTenancy:
    """Shared no-op registry: no limits, zero delay, nothing recorded."""

    active = False

    def policy_for(self, tenant: str) -> TenantPolicy:
        return UNLIMITED

    def admission_reason(self, tenant: str, need_ram_bytes: int) -> Optional[str]:
        return None

    def admission_snapshot(self, tenant: str) -> Tuple[int, int, float]:
        return (0, 0, math.inf)

    def consume_launch(self, tenant: str) -> None:
        pass

    def note_placed(self, tenant: str, ram_bytes: int) -> None:
        pass

    def note_admitted(self, tenant: str) -> None:
        pass

    def note_removed(self, tenant: str, ram_bytes: int) -> None:
        pass

    def note_evacuated(self, tenant: str) -> None:
        pass

    def note_rejected(self, tenant: str, reason: str) -> None:
        pass

    def shape(self, tenant: str) -> float:
        return 0.0

    def record_sent(self, tenant: str, payload_bytes: int) -> None:
        pass


NULL_TENANCY = NullTenancy()


class TenantRegistry:
    """Live tenant policies plus the machinery that enforces them."""

    def __init__(
        self,
        timeline,
        boundary_s: float = 5.0,
        ingress_capacity_bps: Optional[float] = None,
        qos_classes: int = 3,
    ) -> None:
        if boundary_s <= 0:
            raise TenancyError(f"boundary_s must be > 0: {boundary_s}")
        self.timeline = timeline
        self.boundary_s = float(boundary_s)
        self.active = True
        self.policies: Dict[str, TenantPolicy] = {}
        self.accounts: Dict[str, TenantAccount] = {}
        #: audit log of control-plane mutations (never journalled)
        self.audit: List[Dict[str, Any]] = []
        self.link = (
            PriorityLink(ingress_capacity_bps, classes=qos_classes)
            if ingress_capacity_bps
            else None
        )
        self._launch_buckets: Dict[str, TokenBucket] = {}
        self._ingress_buckets: Dict[str, TokenBucket] = {}
        #: staged (action, payload) mutations awaiting the next boundary
        self._staged: List[Tuple[str, Any]] = []
        self._boundary_event = None

    # -- wiring ------------------------------------------------------------

    def attach(self) -> "TenantRegistry":
        """Install this registry as ``timeline.tenancy`` and return it."""
        self.timeline.tenancy = self
        return self

    # -- policy lifecycle --------------------------------------------------

    def apply_initial(self, policies: Iterable[TenantPolicy]) -> None:
        """Apply a policy set immediately (construction-time, pre-traffic)."""
        for policy in policies:
            self._apply(policy, action="apply")

    def commit(self, policy: TenantPolicy) -> None:
        """Stage a create-or-update; takes effect at the next boundary."""
        if not isinstance(policy, TenantPolicy):
            raise TenancyError(f"commit() wants a TenantPolicy, got {policy!r}")
        self._staged.append(("commit", policy))
        self._schedule_boundary()

    def delete(self, name: str) -> None:
        """Stage a deletion; the tenant reverts to unlimited at the boundary."""
        self._staged.append(("delete", name))
        self._schedule_boundary()

    @property
    def reconciled(self) -> bool:
        return not self._staged

    def next_boundary(self) -> float:
        """The sim time the next staged mutation set applies."""
        now = self.timeline.now
        return (math.floor(now / self.boundary_s) + 1) * self.boundary_s

    def wait_reconciled(self) -> None:
        """Sleep the timeline until every staged mutation has applied."""
        while self._staged:
            boundary = self._boundary_event.when if self._boundary_event else (
                self.next_boundary()
            )
            self.timeline.sleep(max(0.0, boundary - self.timeline.now) or 1e-9)

    def _schedule_boundary(self) -> None:
        if self._boundary_event is not None:
            return
        when = self.next_boundary()
        self._boundary_event = self.timeline.events.schedule_at(
            when, self._reconcile
        )

    def _reconcile(self) -> None:
        """Apply every staged mutation, sorted for determinism."""
        self._boundary_event = None
        staged, self._staged = self._staged, []
        applied = deleted = 0
        # Later stages win per tenant; apply in name order for determinism.
        final: Dict[str, Tuple[str, Any]] = {}
        for action, payload in staged:
            name = payload.name if action == "commit" else payload
            final[name] = (action, payload)
        for name in sorted(final):
            action, payload = final[name]
            if action == "commit":
                self._apply(payload, action="commit")
                applied += 1
            else:
                self._remove(name)
                deleted += 1
        self.timeline.obs.event(
            "tenancy.reconciled", applied=applied, deleted=deleted
        )
        self.timeline.obs.metrics.counter("tenancy.reconciles").inc()

    def _apply(self, policy: TenantPolicy, action: str) -> None:
        self.policies[policy.name] = policy
        self.accounts.setdefault(policy.name, TenantAccount(policy.name))
        # Fresh buckets at the boundary: new rates take effect cleanly.
        self._launch_buckets.pop(policy.name, None)
        self._ingress_buckets.pop(policy.name, None)
        self.audit.append(
            {"t": self.timeline.now, "action": action, "tenant": policy.name}
        )

    def _remove(self, name: str) -> None:
        self.policies.pop(name, None)
        self._launch_buckets.pop(name, None)
        self._ingress_buckets.pop(name, None)
        self.audit.append(
            {"t": self.timeline.now, "action": "delete", "tenant": name}
        )

    # -- lookups -----------------------------------------------------------

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, UNLIMITED)

    def account(self, tenant: str) -> TenantAccount:
        acct = self.accounts.get(tenant)
        if acct is None:
            acct = self.accounts[tenant] = TenantAccount(tenant)
        return acct

    def _launch_bucket(self, tenant: str, policy: TenantPolicy) -> TokenBucket:
        bucket = self._launch_buckets.get(tenant)
        if bucket is None:
            bucket = self._launch_buckets[tenant] = TokenBucket(
                policy.rate.launch_rate_per_s,
                policy.rate.launch_burst,
                now=self.timeline.now,
            )
        return bucket

    def _ingress_bucket(self, tenant: str, policy: TenantPolicy) -> TokenBucket:
        bucket = self._ingress_buckets.get(tenant)
        if bucket is None:
            rate = policy.rate.ingress_bytes_per_s
            burst = policy.rate.ingress_burst_bytes or rate
            bucket = self._ingress_buckets[tenant] = TokenBucket(
                rate, burst, now=self.timeline.now
            )
        return bucket

    # -- admission (fleet side) --------------------------------------------

    def admission_reason(self, tenant: str, need_ram_bytes: int) -> Optional[str]:
        """Peek the quota/rate verdict for one more nym; mutates nothing."""
        if not tenant:
            return None
        policy = self.policy_for(tenant)
        if policy.unlimited:
            return None
        acct = self.account(tenant)
        quota = policy.quota
        if quota.max_nyms is not None and acct.nyms + 1 > quota.max_nyms:
            return REASON_QUOTA
        if (
            quota.max_ram_bytes is not None
            and acct.ram_bytes + need_ram_bytes > quota.max_ram_bytes
        ):
            return REASON_QUOTA
        if policy.rate.launch_rate_per_s:
            bucket = self._launch_bucket(tenant, policy)
            if bucket.available(self.timeline.now) < 1.0:
                return REASON_RATE
        return None

    def admission_snapshot(self, tenant: str) -> Tuple[int, int, float]:
        """(nyms, ram_bytes, launch_tokens) for plan-time simulation."""
        if not tenant:
            return (0, 0, math.inf)
        policy = self.policy_for(tenant)
        acct = self.account(tenant)
        if policy.rate.launch_rate_per_s:
            tokens = self._launch_bucket(tenant, policy).available(
                self.timeline.now
            )
        else:
            tokens = math.inf
        return (acct.nyms, acct.ram_bytes, tokens)

    def consume_launch(self, tenant: str) -> None:
        """Spend one launch token for an admission attempt that passed peek."""
        if not tenant:
            return
        policy = self.policy_for(tenant)
        if policy.rate.launch_rate_per_s:
            self._launch_bucket(tenant, policy).try_consume(self.timeline.now, 1.0)

    def note_placed(self, tenant: str, ram_bytes: int) -> None:
        """A nymbox became resident (new placement or evacuation relaunch)."""
        if not tenant:
            return
        acct = self.account(tenant)
        acct.nyms += 1
        acct.ram_bytes += ram_bytes

    def note_admitted(self, tenant: str) -> None:
        """A brand-new arrival passed admission (relaunches don't count)."""
        if not tenant:
            return
        self.account(tenant).admitted += 1
        self.timeline.obs.metrics.counter("tenancy.admitted").inc()

    def note_removed(self, tenant: str, ram_bytes: int) -> None:
        if not tenant:
            return
        acct = self.account(tenant)
        acct.nyms = max(0, acct.nyms - 1)
        acct.ram_bytes = max(0, acct.ram_bytes - ram_bytes)

    def note_evacuated(self, tenant: str) -> None:
        if not tenant:
            return
        self.account(tenant).evacuations += 1
        self.timeline.obs.metrics.counter("tenancy.evacuations").inc()

    def note_rejected(self, tenant: str, reason: str) -> None:
        if not tenant:
            return
        acct = self.account(tenant)
        if reason == REASON_QUOTA:
            acct.rejected_quota += 1
        elif reason == REASON_RATE:
            acct.rejected_rate += 1
        else:
            acct.rejected_capacity += 1
        self.timeline.obs.metrics.counter(f"tenancy.rejected.{reason}").inc()

    # -- ingress shaping (anonymizer side) ---------------------------------

    def shape(self, tenant: str) -> float:
        """Delay (seconds) this tenant's next send must wait before starting.

        Combines the tenant's ingress-bucket debt with the shared
        strict-priority link backlog.  Emits a ``tenancy.throttle`` journal
        event only when the delay is positive, so unlimited policies leave
        the journal untouched.
        """
        if not tenant:
            return 0.0
        policy = self.policy_for(tenant)
        now = self.timeline.now
        delay = 0.0
        if policy.rate.ingress_bytes_per_s:
            delay = self._ingress_bucket(tenant, policy).deficit_wait(now)
        if self.link is not None:
            delay = max(delay, self.link.queue_delay(now, policy.qos.priority))
        if delay > 0.0:
            acct = self.account(tenant)
            acct.throttled += 1
            acct.throttle_seconds += delay
            self.timeline.obs.metrics.counter("tenancy.throttled").inc()
            self.timeline.obs.metrics.histogram("tenancy.throttle_s").observe(delay)
            self.timeline.obs.event(
                "tenancy.throttle",
                tenant=tenant,
                qos=policy.qos.name,
                delay_s=round(delay, 6),
            )
        return delay

    def record_sent(self, tenant: str, payload_bytes: int) -> None:
        """Charge a completed send against the tenant's rate state."""
        if not tenant:
            return
        policy = self.policy_for(tenant)
        now = self.timeline.now
        acct = self.account(tenant)
        acct.sends += 1
        acct.bytes_sent += payload_bytes
        if policy.rate.ingress_bytes_per_s:
            self._ingress_bucket(tenant, policy).charge(now, payload_bytes)
        if self.link is not None:
            self.link.charge(now, policy.qos.priority, payload_bytes)

    # -- fault hooks -------------------------------------------------------

    def burst(self, tenant: str, debt_bytes: int) -> bool:
        """Inject ingress-bucket debt (a traffic burst) for ``tenant``.

        Returns True when the tenant has an ingress rate to burst past;
        unlimited tenants absorb the burst with no effect.
        """
        policy = self.policy_for(tenant)
        if not policy.rate.ingress_bytes_per_s:
            return False
        self._ingress_bucket(tenant, policy).charge(self.timeline.now, debt_bytes)
        self.timeline.obs.metrics.counter("tenancy.bursts").inc()
        self.timeline.obs.event(
            "tenancy.burst", tenant=tenant, debt_bytes=int(debt_bytes)
        )
        return True

    # -- reporting ---------------------------------------------------------

    def report(self) -> List[Dict[str, Any]]:
        """Per-tenant counter rows, sorted by tenant name."""
        return [
            self.accounts[name].as_dict() for name in sorted(self.accounts)
        ]
